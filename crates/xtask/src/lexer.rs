//! A minimal, dependency-free Rust lexer for the lint driver.
//!
//! The v1 scanner worked line-by-line over a regex-free but still textual
//! "strip comments and strings" pass, and that design shipped a real
//! desync bug (backslash-newline continuations) and stayed structurally
//! blind to byte/raw-string prefixes (`br#"…"#`), which let string
//! contents leak into the code view and desynchronize `{`/`}` tracking.
//! This module replaces that pass with a real token stream: every token
//! carries its byte span and start line, raw strings (any `r`/`br`/`cr`
//! prefix and `#` depth), nested block comments, char-vs-lifetime ticks,
//! and doc comments are all lexed exactly, and `#[cfg(test)]` regions are
//! resolved on tokens (so braces inside literals can never desync them).
//!
//! The lexer is *lossless by construction*: concatenating the gaps and
//! token spans reproduces the input, which is what makes the per-line
//! [`LineView`] projection (used by the line-oriented lints) exact.

/// The kind of one lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'outer`), quote included.
    Lifetime,
    /// Integer or float literal, suffix included (`1_000u64`, `2.5e-3`).
    Number,
    /// String literal `"…"` (or C string `c"…"`), escapes intact.
    Str,
    /// Raw string literal of any prefix and depth: `r"…"`, `r#"…"#`,
    /// `br#"…"#`, `cr"…"`.
    RawStr,
    /// Byte string literal `b"…"`.
    ByteStr,
    /// Char literal `'x'`, `'\n'`, `'\u{1F600}'`.
    CharLit,
    /// Byte literal `b'x'`.
    ByteLit,
    /// Plain `//` line comment (including `////…` rulers, which rustc
    /// does *not* treat as doc comments).
    LineComment,
    /// Outer doc line `/// …` (exactly three slashes).
    DocLine,
    /// Inner doc line `//! …`.
    InnerDocLine,
    /// Plain block comment `/* … */`, nesting handled.
    BlockComment,
    /// Outer block doc `/** … */`.
    DocBlock,
    /// Inner block doc `/*! … */`.
    InnerDocBlock,
    /// Punctuation, joined into the usual multi-byte operators (`->`,
    /// `::`, `+=`, `..=`, …).
    Punct,
}

impl TokenKind {
    /// Is this token any form of comment?
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment
                | TokenKind::DocLine
                | TokenKind::InnerDocLine
                | TokenKind::BlockComment
                | TokenKind::DocBlock
                | TokenKind::InnerDocBlock
        )
    }

    /// Is this token a doc comment (outer or inner, line or block)?
    pub fn is_doc(self) -> bool {
        matches!(
            self,
            TokenKind::DocLine
                | TokenKind::InnerDocLine
                | TokenKind::DocBlock
                | TokenKind::InnerDocBlock
        )
    }

    /// Is this token a string-like literal whose contents must never be
    /// mistaken for code?
    pub fn is_string_like(self) -> bool {
        matches!(
            self,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::ByteStr
                | TokenKind::CharLit
                | TokenKind::ByteLit
        )
    }
}

/// One token: kind, byte span `[start, end)`, and 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Multi-byte punctuation, longest first so joining is greedy.
const JOINED_PUNCT: [&str; 23] = [
    "<<=", ">>=", "..=", "...", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
    "&&", "||", "<<", ">>", "::", "..", "&=", "|=",
];

/// Lex `src` into a token stream. Whitespace is skipped (tokens carry
/// their own spans, so nothing is lost); unterminated literals and
/// comments extend to end of input rather than erroring, because the
/// lints must degrade gracefully on work-in-progress files.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;

        // Comments.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let mut j = i;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            let text = &src[i..j];
            let kind = if text.starts_with("//!") {
                TokenKind::InnerDocLine
            } else if text.starts_with("///") && !text.starts_with("////") {
                TokenKind::DocLine
            } else {
                TokenKind::LineComment
            };
            out.push(Token {
                kind,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'\n' {
                    line += 1;
                    j += 1;
                } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text = &src[i..j];
            let kind = if text.starts_with("/*!") {
                TokenKind::InnerDocBlock
            } else if text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4 {
                TokenKind::DocBlock
            } else {
                TokenKind::BlockComment
            };
            out.push(Token {
                kind,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }

        // String-like literals with prefixes: r"", r#""#, b"", br#""#,
        // b'', c"", cr"" — and raw identifiers r#ident.
        if let Some((kind, end, newlines)) = lex_prefixed_literal(bytes, i) {
            out.push(Token {
                kind,
                start,
                end,
                line: start_line,
            });
            line += newlines;
            i = end;
            continue;
        }

        // Plain string literal.
        if b == b'"' {
            let (end, newlines) = scan_string_body(bytes, i + 1);
            out.push(Token {
                kind: TokenKind::Str,
                start,
                end,
                line: start_line,
            });
            line += newlines;
            i = end;
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            let (kind, end) = lex_tick(bytes, i);
            out.push(Token {
                kind,
                start,
                end,
                line: start_line,
            });
            i = end;
            continue;
        }

        // Numbers.
        if b.is_ascii_digit() {
            let end = scan_number(bytes, i);
            out.push(Token {
                kind: TokenKind::Number,
                start,
                end,
                line: start_line,
            });
            i = end;
            continue;
        }

        // Identifiers and keywords (bytes >= 0x80 are treated as ident
        // continuation so multi-byte UTF-8 identifiers stay one token).
        if is_ident_start(b) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }

        // Punctuation: join the standard multi-byte operators.
        let mut matched = 1;
        for op in JOINED_PUNCT {
            if src[i..].starts_with(op) {
                matched = op.len();
                break;
            }
        }
        out.push(Token {
            kind: TokenKind::Punct,
            start,
            end: i + matched,
            line: start_line,
        });
        i += matched;
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scan a `"`-delimited string body starting just past the opening quote.
/// Returns (one past the closing quote, newlines consumed).
fn scan_string_body(bytes: &[u8], mut j: usize) -> (usize, usize) {
    let mut newlines = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                if bytes.get(j + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            b'"' => return (j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (bytes.len(), newlines)
}

/// Scan a raw string body starting just past the opening quote, with
/// `hashes` trailing `#` required to close. Returns (end, newlines).
fn scan_raw_body(bytes: &[u8], mut j: usize, hashes: usize) -> (usize, usize) {
    let mut newlines = 0usize;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        } else if bytes[j] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(j + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (j + 1 + hashes, newlines);
            }
        }
        j += 1;
    }
    (bytes.len(), newlines)
}

/// Try to lex a prefixed literal (`r`, `b`, `br`, `c`, `cr` forms) or a
/// raw identifier at `i`. Returns `(kind, end, newlines)` on success.
fn lex_prefixed_literal(bytes: &[u8], i: usize) -> Option<(TokenKind, usize, usize)> {
    let b = bytes[i];
    if !(b == b'r' || b == b'b' || b == b'c') {
        return None;
    }
    // A prefix is only a prefix at the start of a token: if the previous
    // byte is an identifier byte we are mid-identifier. Callers only
    // invoke us at token starts, so no check is needed here.
    let next = bytes.get(i + 1).copied();
    match (b, next) {
        // r"…" / r#"…"# / r#ident
        (b'r', Some(b'"')) => {
            let (end, nl) = scan_raw_body(bytes, i + 2, 0);
            Some((TokenKind::RawStr, end, nl))
        }
        (b'r', Some(b'#')) => {
            let mut hashes = 0;
            let mut j = i + 1;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                let (end, nl) = scan_raw_body(bytes, j + 1, hashes);
                Some((TokenKind::RawStr, end, nl))
            } else if hashes == 1 && bytes.get(j).copied().is_some_and(is_ident_start) {
                // Raw identifier r#type.
                let mut k = j + 1;
                while k < bytes.len() && is_ident_continue(bytes[k]) {
                    k += 1;
                }
                Some((TokenKind::Ident, k, 0))
            } else {
                None
            }
        }
        // b'…' / b"…" / br"…" / br#"…"#
        (b'b', Some(b'\'')) => {
            let (_, end) = lex_tick(bytes, i + 1);
            Some((TokenKind::ByteLit, end, 0))
        }
        (b'b', Some(b'"')) => {
            let (end, nl) = scan_string_body(bytes, i + 2);
            Some((TokenKind::ByteStr, end, nl))
        }
        (b'b', Some(b'r')) | (b'c', Some(b'r')) => {
            let mut hashes = 0;
            let mut j = i + 2;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                let (end, nl) = scan_raw_body(bytes, j + 1, hashes);
                Some((TokenKind::RawStr, end, nl))
            } else {
                None
            }
        }
        // c"…" (C string, Rust ≥ 1.77)
        (b'c', Some(b'"')) => {
            let (end, nl) = scan_string_body(bytes, i + 2);
            Some((TokenKind::Str, end, nl))
        }
        _ => None,
    }
}

/// Lex at a `'`: char literal or lifetime. Returns (kind, end).
fn lex_tick(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    match bytes.get(i + 1) {
        // Escaped char: '\n', '\'', '\u{…}'.
        Some(b'\\') => {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                if bytes[j] == b'\\' {
                    j += 1; // skip the escaped byte (covers \\ and \')
                }
                j += 1;
            }
            let end = if bytes.get(j) == Some(&b'\'') {
                j + 1
            } else {
                j
            };
            (TokenKind::CharLit, end)
        }
        Some(&c) if is_ident_start(c) || c.is_ascii_digit() => {
            // Identifier-ish run: 'a' is a char, 'abc is a lifetime.
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                (TokenKind::CharLit, j + 1)
            } else {
                (TokenKind::Lifetime, j)
            }
        }
        // Punctuation or unicode char like '.' or 'é': closing quote on
        // the same line makes it a char literal; otherwise a stray tick.
        Some(_) => {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                (TokenKind::CharLit, j + 1)
            } else {
                (TokenKind::Punct, i + 1)
            }
        }
        None => (TokenKind::Punct, i + 1),
    }
}

/// Scan a numeric literal: digits, `_`, type suffixes, hex/oct/bin, a
/// fractional part when followed by a digit (so `1..5` and `1.max(2)`
/// stay ranges and method calls), and signed exponents (`1e-6`).
fn scan_number(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < bytes.len() {
        let b = bytes[j];
        if b.is_ascii_alphanumeric() || b == b'_' {
            // Signed exponent: e+3 / E-6 (decimal literals only).
            if (b == b'e' || b == b'E')
                && !starts_with_radix_prefix(bytes, i)
                && matches!(bytes.get(j + 1), Some(b'+') | Some(b'-'))
                && bytes.get(j + 2).is_some_and(u8::is_ascii_digit)
            {
                j += 2;
            }
            j += 1;
        } else if b == b'.'
            && !starts_with_radix_prefix(bytes, i)
            && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
        {
            j += 1;
        } else {
            break;
        }
    }
    j
}

fn starts_with_radix_prefix(bytes: &[u8], i: usize) -> bool {
    bytes[i] == b'0'
        && matches!(
            bytes.get(i + 1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        )
}

/// Is a `Number` token's text a floating-point literal (used by the
/// tick-arithmetic lint's float exemption)?
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0o")
        || text.starts_with("0b")
    {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains(['e', 'E'])
}

/// The per-line projection of a token stream, mirroring what the v1
/// scanner derived textually — but computed from exact tokens.
#[derive(Clone, Debug, Default)]
pub struct LineView {
    /// Code with comments removed and string/char contents blanked
    /// (string delimiters kept, raw-string bodies fully blanked).
    pub code: String,
    /// Comment text of the line (all comment kinds), code blanked.
    pub comment: String,
    /// The line's first token is a doc comment (`///`, `//!`, or a line
    /// of a block doc).
    pub doc_comment: bool,
    /// The raw line starts with a single `/` that really is a division
    /// operator in code (never prose inside a string or comment).
    pub doc_slash: bool,
    /// The line falls inside (or opens) a `#[cfg(test)]` region.
    pub in_test_cfg: bool,
}

/// Project `tokens` over `src` into per-line views.
pub fn line_views(src: &str, tokens: &[Token]) -> Vec<LineView> {
    let n = src.len();
    let mut code_buf = vec![b' '; n];
    let mut cmt_buf = vec![b' '; n];
    for (i, &b) in src.as_bytes().iter().enumerate() {
        if b == b'\n' {
            code_buf[i] = b'\n';
            cmt_buf[i] = b'\n';
        }
    }

    for t in tokens {
        let span = &src.as_bytes()[t.start..t.end];
        match t.kind {
            TokenKind::Ident | TokenKind::Lifetime | TokenKind::Number | TokenKind::Punct => {
                code_buf[t.start..t.end].copy_from_slice(span);
            }
            TokenKind::Str | TokenKind::ByteStr | TokenKind::CharLit | TokenKind::ByteLit => {
                // Keep the delimiters (and prefix) so patterns like `'x'`
                // or `"…"` keep their shape; blank the contents.
                let quote = if matches!(t.kind, TokenKind::CharLit | TokenKind::ByteLit) {
                    b'\''
                } else {
                    b'"'
                };
                let mut k = t.start;
                // Prefix bytes (b, c) and the opening quote.
                while k < t.end {
                    code_buf[k] = span[k - t.start];
                    if span[k - t.start] == quote {
                        break;
                    }
                    k += 1;
                }
                if t.end > t.start && span[t.end - 1 - t.start] == quote && t.end - 1 > k {
                    code_buf[t.end - 1] = quote;
                }
            }
            TokenKind::RawStr => {
                // Fully blanked, matching the v1 scanner: raw-string
                // bodies (and their delimiters) contribute nothing.
            }
            k if k.is_comment() => {
                cmt_buf[t.start..t.end].copy_from_slice(span);
            }
            _ => {}
        }
    }

    let code_text = String::from_utf8_lossy(&code_buf).into_owned();
    let cmt_text = String::from_utf8_lossy(&cmt_buf).into_owned();
    let raw_lines: Vec<&str> = src.lines().collect();
    let code_lines: Vec<&str> = code_text.lines().collect();
    let cmt_lines: Vec<&str> = cmt_text.lines().collect();

    let mut out: Vec<LineView> = (0..raw_lines.len())
        .map(|i| LineView {
            code: code_lines.get(i).copied().unwrap_or("").to_string(),
            comment: cmt_lines.get(i).copied().unwrap_or("").to_string(),
            ..LineView::default()
        })
        .collect();

    // Line starts, for locating the first non-whitespace byte per line.
    let mut line_start = Vec::with_capacity(raw_lines.len() + 1);
    line_start.push(0usize);
    for (i, &b) in src.as_bytes().iter().enumerate() {
        if b == b'\n' {
            line_start.push(i + 1);
        }
    }

    // Doc-comment lines: every line covered by a doc token.
    for t in tokens {
        if t.kind.is_doc() {
            let text = t.text(src);
            let extra = text.matches('\n').count();
            for l in t.line..=t.line + extra {
                if let Some(v) = out.get_mut(l - 1) {
                    v.doc_comment = true;
                }
            }
        }
    }

    // doc-slash candidates: the raw line starts with exactly "/ " (or a
    // lone "/") *and* that byte belongs to a Punct token — prose inside
    // strings or comments can never qualify.
    for (i, raw) in raw_lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if !(trimmed.starts_with("/ ") || trimmed == "/") {
            continue;
        }
        if out[i].code.trim().is_empty() {
            continue;
        }
        let off = line_start[i] + (raw.len() - trimmed.len());
        let is_code_slash = tokens
            .iter()
            .any(|t| t.kind == TokenKind::Punct && t.start == off);
        if is_code_slash {
            out[i].doc_slash = true;
        }
    }

    mark_test_cfg_regions(src, tokens, &mut out);
    out
}

/// Mark lines inside `#[cfg(test)]` (and `#![cfg(test)]`) regions.
///
/// The region of an outer attribute is the annotated item: subsequent
/// attributes are skipped, then tokens are walked to the item's end —
/// the matching `}` of its first top-level brace, or a top-level `;`
/// for brace-less items (so `#[cfg(test)] use …;` no longer swallows the
/// rest of the file, a v1 bug). Delimiters are counted on tokens, so
/// braces inside strings or comments can never desync the region.
fn mark_test_cfg_regions(src: &str, tokens: &[Token], lines: &mut [LineView]) {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let mark = |lines: &mut [LineView], from: usize, to: usize| {
        for l in from..=to {
            if let Some(v) = lines.get_mut(l - 1) {
                v.in_test_cfg = true;
            }
        }
    };
    let last_line = lines.len().max(1);

    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Punct && toks[i].text(src) == "#") {
            i += 1;
            continue;
        }
        let inner = toks.get(i + 1).is_some_and(|t| t.text(src) == "!");
        let open = i + 1 + usize::from(inner);
        if toks.get(open).is_none_or(|t| t.text(src) != "[") {
            i += 1;
            continue;
        }
        // Find the matching `]` and test for `cfg(… test …)`.
        let mut depth = 0i32;
        let mut close = open;
        while close < toks.len() {
            match toks[close].text(src) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        if close >= toks.len() {
            break;
        }
        let body = &toks[open + 1..close];
        let is_cfg_test = body.first().is_some_and(|t| t.text(src) == "cfg")
            && body
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text(src) == "test");
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        let attr_line = toks[i].line;
        if inner {
            // `#![cfg(test)]`: the whole file is a test region.
            mark(lines, 1, last_line);
            return;
        }
        // Skip any further outer attributes on the same item.
        let mut j = close + 1;
        while toks.get(j).is_some_and(|t| t.text(src) == "#")
            && toks.get(j + 1).is_some_and(|t| t.text(src) == "[")
        {
            let mut d = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].text(src) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        // Walk the annotated item to its end.
        let mut delim = 0i32;
        let mut saw_brace = false;
        let mut end_line = last_line;
        let mut k = j;
        while k < toks.len() {
            match toks[k].text(src) {
                "{" | "(" | "[" => {
                    if toks[k].text(src) == "{" {
                        saw_brace = true;
                    }
                    delim += 1;
                }
                "}" | ")" | "]" => {
                    delim -= 1;
                    if delim == 0 && saw_brace && toks[k].text(src) == "}" {
                        end_line = toks[k].line;
                        break;
                    }
                }
                ";" if delim == 0 => {
                    end_line = toks[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        mark(lines, attr_line, end_line);
        i = close + 1;
    }
}

/// Render a token stream as one line per token (`LINE KIND "text"`), for
/// golden-file fixture tests. Long tokens are elided in the middle so
/// goldens stay readable.
pub fn render_tokens(src: &str) -> String {
    let mut out = String::new();
    for t in lex(src) {
        let text = t.text(src);
        let shown: String = if text.len() > 40 {
            let head: String = text.chars().take(18).collect();
            let tail: String = text
                .chars()
                .rev()
                .take(18)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            format!("{head}…{tail}")
        } else {
            text.to_string()
        };
        let escaped = shown.replace('\n', "\\n");
        out.push_str(&format!("{:>4} {:?} {escaped}\n", t.line, t.kind));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lossless_spans() {
        let src = "fn f() -> u64 { \"x\" .len() as u64 + 1 } // done\n";
        let toks = lex(src);
        for w in toks.windows(2) {
            assert!(w[0].end <= w[1].start, "overlapping tokens");
        }
    }

    #[test]
    fn raw_strings_all_prefixes() {
        for src in [
            "let a = r\"hi\";",
            "let a = r#\"hi \"quoted\" }\"#;",
            "let a = br#\"bytes } { \"#;",
            "let a = cr\"c-raw\";",
        ] {
            let toks = lex(src);
            assert!(
                toks.iter().any(|t| t.kind == TokenKind::RawStr),
                "no raw string in {src}"
            );
            // The brace inside the raw string must not become a Punct.
            assert!(
                !toks
                    .iter()
                    .any(|t| t.kind == TokenKind::Punct && t.text(src) == "}"),
                "raw string leaked a brace in {src}"
            );
        }
    }

    #[test]
    fn raw_identifier_is_ident() {
        let src = "let r#type = 1;";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[1].text(src), "r#type");
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks = lex(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn loop_label_is_lifetime() {
        let src = "'outer: loop { break 'outer; }";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Lifetime);
        assert_eq!(toks[0].text(src), "'outer");
    }

    #[test]
    fn doc_comment_kinds() {
        assert!(kinds("/// doc").contains(&TokenKind::DocLine));
        assert!(kinds("//! inner").contains(&TokenKind::InnerDocLine));
        assert!(kinds("//// ruler").contains(&TokenKind::LineComment));
        assert!(kinds("// plain").contains(&TokenKind::LineComment));
        assert!(kinds("/** block */").contains(&TokenKind::DocBlock));
        assert!(kinds("/*! inner */").contains(&TokenKind::InnerDocBlock));
        assert!(kinds("/* plain */").contains(&TokenKind::BlockComment));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ fn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text(src), "/* outer /* inner */ still */");
        assert_eq!(toks[1].text(src), "fn");
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "let x = 1.5e-3; for i in 0..10 { let y = 1.max(2); }";
        let toks = lex(src);
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, ["1.5e-3", "0", "10", "1", "2"]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Punct && t.text(src) == ".."));
    }

    #[test]
    fn float_literal_detection() {
        assert!(is_float_literal("1.5"));
        assert!(is_float_literal("1e6"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("1_000"));
        assert!(!is_float_literal("0x1F"));
    }

    #[test]
    fn string_continuation_counts_lines() {
        let src = "let s = \"one \\\n two\";\nlet t = 3;";
        let toks = lex(src);
        let t3 = toks.iter().find(|t| t.text(src) == "t");
        assert_eq!(t3.map(|t| t.line), Some(3));
    }

    #[test]
    fn line_views_blank_string_contents() {
        let src = "fn f() { let s = \"panic!( .unwrap()\"; }\n";
        let views = line_views(src, &lex(src));
        assert!(!views[0].code.contains("panic"));
        assert!(views[0].code.contains('"'));
    }

    #[test]
    fn line_views_doc_slash_only_in_code() {
        // Division continuation: real code, flagged as candidate.
        let src = "fn f(a: f64, b: f64) -> f64 {\n    a\n/ b\n}\n";
        let views = line_views(src, &lex(src));
        assert!(views[2].doc_slash);
        // Same shape inside a raw string: prose, not flagged.
        let src = "const S: &str = r#\"\n/ prose line\n\"#;\nfn g() {}\n";
        let views = line_views(src, &lex(src));
        assert!(!views.iter().any(|v| v.doc_slash));
    }

    #[test]
    fn cfg_test_region_on_tokens() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\npub fn after() {}\n";
        let views = line_views(src, &lex(src));
        assert!(views[0].in_test_cfg && views[1].in_test_cfg && views[2].in_test_cfg);
        assert!(views[3].in_test_cfg);
        assert!(!views[4].in_test_cfg, "region leaked past its close");
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::fmt::Debug;\n\npub fn live() {}\n";
        let views = line_views(src, &lex(src));
        assert!(views[0].in_test_cfg && views[1].in_test_cfg);
        assert!(!views[3].in_test_cfg, "cfg(test) use swallowed the file");
    }

    #[test]
    fn cfg_test_region_survives_braces_in_strings() {
        let src = "#[cfg(test)]\nmod tests {\n    const T: &[u8] = br#\"}}}\"#;\n    pub fn helper() {}\n}\npub fn after() {}\n";
        let views = line_views(src, &lex(src));
        assert!(views[3].in_test_cfg, "byte raw string desynced the region");
        assert!(!views[5].in_test_cfg);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\npub fn helper() {}\n";
        let views = line_views(src, &lex(src));
        assert!(views.iter().all(|v| v.in_test_cfg));
    }

    #[test]
    fn multiline_cfg_attr_is_tracked() {
        let src = "#[cfg(\n    test\n)]\nmod tests {\n    pub fn h() {}\n}\n";
        let views = line_views(src, &lex(src));
        assert!(views[4].in_test_cfg, "multi-line cfg attr missed");
    }
}
