//! The perf ratchet: committed per-commit throughput history, hard-gated.
//!
//! `BENCH_history.jsonl` (committed at the workspace root) is an
//! append-only log of throughput baselines, one JSON object per line:
//!
//! ```text
//! {"schema": "anu-bench-history/v1", "commit": "4b7dad6", "scale1_events_per_sec": 11854120.0, ...}
//! ```
//!
//! `anu-xtask bench-ratchet` reads the freshly generated
//! `BENCH_figures.json` manifest (which must contain a `bench` section —
//! run `figures --scale-bench N` first), compares its scale-1 fig6
//! throughput against the *best* recorded history entry, and:
//!
//! - **fails** if the fresh number falls below [`BENCH_RATCHET_THRESHOLD`]
//!   of the best baseline — unlike the in-process `PERF-GATE` line this
//!   is a hard CI gate, because the comparison is against numbers
//!   recorded on the same class of machine and committed to the repo;
//! - **passes with a hint** when the fresh number beats the best —
//!   `--update` appends a new record to bank the improvement;
//! - **passes silently** otherwise.
//!
//! `--update` only ever appends: history lines are never rewritten or
//! deleted, so the full trajectory stays reviewable in git. Appending a
//! record that *regresses* is refused — raising the floor is automatic,
//! lowering it is a hand edit in a reviewed commit (same contract as the
//! lint ratchet in [`crate::ratchet`]).
//!
//! Everything here is dependency-free: the module carries its own minimal
//! JSON reader for the two restricted shapes it consumes (the manifest and
//! the history lines).

use crate::json_str;

/// Hard-gate threshold: a fresh run below this fraction of the best
/// recorded baseline fails the ratchet. Mirrors the harness's soft
/// `PERF_GATE_THRESHOLD` (the two gates answer the same question against
/// different baselines; keep them in sync when retuning).
pub const BENCH_RATCHET_THRESHOLD: f64 = 0.8;

/// Schema tag every history line must carry.
pub const HISTORY_SCHEMA: &str = "anu-bench-history/v1";

/// One committed throughput baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Commit the numbers were recorded on (short hash, or "unknown").
    pub commit: String,
    /// Scale-1 fig6 events/sec — the gated number.
    pub scale1_events_per_sec: f64,
    /// Scale-N fig6 events/sec (context, not gated).
    pub scale_n_events_per_sec: Option<f64>,
    /// Trace overhead percentage at record time (context, not gated).
    pub overhead_pct: Option<f64>,
}

impl Record {
    /// Render as one history line (no trailing newline).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{{\"schema\": {}, \"commit\": {}, \"scale1_events_per_sec\": {}}}",
            json_str(HISTORY_SCHEMA),
            json_str(&self.commit),
            fmt_f64(self.scale1_events_per_sec),
        );
        // Optional context fields slot in before the closing brace.
        let mut extras = String::new();
        if let Some(n) = self.scale_n_events_per_sec {
            extras.push_str(&format!(", \"scale_n_events_per_sec\": {}", fmt_f64(n)));
        }
        if let Some(p) = self.overhead_pct {
            extras.push_str(&format!(", \"overhead_pct\": {}", fmt_f64(p)));
        }
        if !extras.is_empty() {
            line.insert_str(line.len() - 1, &extras);
        }
        line
    }
}

/// Format a float so it round-trips through the reader (always with a
/// decimal point or exponent, never as a bare integer JSON would coerce).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Parse the whole history file. Blank lines are ignored; every other
/// line must be a valid v1 record (a corrupted history should stop the
/// gate, not silently shrink it).
pub fn parse_history(text: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Val::parse(line).map_err(|e| format!("history line {}: {e}", idx + 1))?;
        let schema = v
            .get("schema")
            .and_then(Val::as_str)
            .ok_or_else(|| format!("history line {}: missing `schema`", idx + 1))?;
        if schema != HISTORY_SCHEMA {
            return Err(format!(
                "history line {}: unsupported schema `{schema}` (want `{HISTORY_SCHEMA}`)",
                idx + 1
            ));
        }
        let commit = v
            .get("commit")
            .and_then(Val::as_str)
            .ok_or_else(|| format!("history line {}: missing `commit`", idx + 1))?
            .to_string();
        let scale1 = v
            .get("scale1_events_per_sec")
            .and_then(Val::as_f64)
            .filter(|s| s.is_finite() && *s > 0.0)
            .ok_or_else(|| {
                format!(
                    "history line {}: missing or non-positive `scale1_events_per_sec`",
                    idx + 1
                )
            })?;
        records.push(Record {
            commit,
            scale1_events_per_sec: scale1,
            scale_n_events_per_sec: v.get("scale_n_events_per_sec").and_then(Val::as_f64),
            overhead_pct: v.get("overhead_pct").and_then(Val::as_f64),
        });
    }
    Ok(records)
}

/// The bench numbers `bench-ratchet` needs from `BENCH_figures.json`.
#[derive(Clone, Copy, Debug)]
pub struct BenchPoint {
    /// `bench.scale1_events_per_sec` — the gated number.
    pub scale1_events_per_sec: f64,
    /// `bench.scale_n_events_per_sec` (recorded as context on `--update`).
    pub scale_n_events_per_sec: Option<f64>,
    /// `trace_overhead.overhead_pct` when the manifest has one.
    pub overhead_pct: Option<f64>,
}

/// Pull the gated numbers out of a figures manifest. Fails when the
/// manifest has no `bench` section — the gate needs `--scale-bench` to
/// have run, and a silent pass on a probe-less manifest would defeat it.
pub fn extract_manifest(text: &str) -> Result<BenchPoint, String> {
    let v = Val::parse(text).map_err(|e| format!("manifest: {e}"))?;
    let bench = v.get("bench").ok_or("manifest has no `bench` key")?;
    if matches!(bench, Val::Null) {
        return Err(
            "manifest `bench` section is null — regenerate with `figures --scale-bench N`"
                .to_string(),
        );
    }
    let scale1 = bench
        .get("scale1_events_per_sec")
        .and_then(Val::as_f64)
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or("manifest bench has no positive `scale1_events_per_sec`")?;
    Ok(BenchPoint {
        scale1_events_per_sec: scale1,
        scale_n_events_per_sec: bench.get("scale_n_events_per_sec").and_then(Val::as_f64),
        overhead_pct: v
            .get("trace_overhead")
            .and_then(|t| t.get("overhead_pct"))
            .and_then(Val::as_f64),
    })
}

/// Outcome of gating a fresh bench point against the history.
#[derive(Clone, Debug)]
pub struct BenchComparison {
    /// Best recorded scale-1 throughput.
    pub best: f64,
    /// Commit that recorded it.
    pub best_commit: String,
    /// The fresh run's scale-1 throughput.
    pub current: f64,
    /// `current / best`.
    pub ratio: f64,
}

impl BenchComparison {
    /// Does the fresh run hold the ratchet?
    pub fn ok(&self) -> bool {
        self.ratio >= BENCH_RATCHET_THRESHOLD
    }

    /// Did the fresh run beat the best baseline (bankable via `--update`)?
    pub fn improved(&self) -> bool {
        self.current > self.best
    }

    /// One-line verdict for logs and the CI report artifact.
    pub fn verdict_line(&self) -> String {
        format!(
            "BENCH-RATCHET {}: scale-1 {:.0} ev/s = {:.2}x best recorded {:.0} ev/s (commit {}, hard threshold {:.2}x)",
            if self.ok() { "OK" } else { "FAIL" },
            self.current,
            self.ratio,
            self.best,
            self.best_commit,
            BENCH_RATCHET_THRESHOLD,
        )
    }
}

/// Gate `current` against the best history entry. An empty history is an
/// error — bootstrap with `--update` first.
pub fn compare(history: &[Record], current: f64) -> Result<BenchComparison, String> {
    let best = history
        .iter()
        .max_by(|a, b| a.scale1_events_per_sec.total_cmp(&b.scale1_events_per_sec))
        .ok_or("history is empty — run `anu-xtask bench-ratchet --update` to bootstrap")?;
    Ok(BenchComparison {
        best: best.scale1_events_per_sec,
        best_commit: best.commit.clone(),
        current,
        ratio: current / best.scale1_events_per_sec,
    })
}

/// Minimal JSON value reader for the two restricted shapes this module
/// consumes. Supports objects, arrays, strings (with `\"`-style escape
/// skipping — escaped content is preserved verbatim minus the backslash
/// for the simple escapes the manifest writer emits), numbers, booleans
/// and null. Not a general-purpose parser; errors carry byte offsets.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// Key/value pairs in document order.
    Obj(Vec<(String, Val)>),
    /// Array elements in document order.
    Arr(Vec<Val>),
    /// String contents.
    Str(String),
    /// Any JSON number, as f64.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Val {
    /// Parse a complete JSON document (rejects trailing data).
    pub fn parse(text: &str) -> Result<Val, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i < p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(b'n') => self.literal("null", Val::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            got => Err(format!(
                "expected a JSON value at byte {}, found {:?}",
                self.i,
                got.map(|b| b as char)
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Val) -> Result<Val, String> {
        self.skip_ws();
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.i += 1; // consume '{' (peeked by caller)
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Val::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            if self.peek() != Some(b':') {
                return Err(format!("expected `:` at byte {}", self.i));
            }
            self.i += 1;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Val::Obj(pairs));
                }
                got => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.i,
                        got.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.i += 1; // consume '[' (peeked by caller)
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Val::Arr(items));
                }
                got => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.i,
                        got.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected `\"` at byte {}", self.i));
        }
        self.i += 1;
        let mut out = String::new();
        while let Some(&b) = self.bytes.get(self.i) {
            match b {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|b| *b as char),
                                self.i
                            ))
                        }
                    }
                    self.i += 1;
                }
                _ => {
                    // Pass multi-byte UTF-8 through untouched.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.i..self.i + 1]).unwrap_or("\u{fffd}"),
                    );
                    self.i += 1;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Val, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .bytes
            .get(self.i)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.i])
            .parse::<f64>()
            .map(Val::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(commit: &str, scale1: f64) -> Record {
        Record {
            commit: commit.to_string(),
            scale1_events_per_sec: scale1,
            scale_n_events_per_sec: None,
            overhead_pct: None,
        }
    }

    #[test]
    fn record_render_parse_round_trip() {
        let full = Record {
            commit: "abc123".to_string(),
            scale1_events_per_sec: 12_345_678.5,
            scale_n_events_per_sec: Some(2.5e7),
            overhead_pct: Some(42.25),
        };
        let text = format!("{}\n\n{}\n", full.render(), rec("def", 1.0e6).render());
        let parsed = parse_history(&text).expect("round trip");
        assert_eq!(parsed, vec![full, rec("def", 1.0e6)]);
    }

    #[test]
    fn history_rejects_bad_lines() {
        assert!(parse_history("not json\n").is_err());
        assert!(parse_history(
            "{\"schema\": \"other/v9\", \"commit\": \"x\", \"scale1_events_per_sec\": 1.0}"
        )
        .is_err());
        assert!(
            parse_history("{\"schema\": \"anu-bench-history/v1\", \"commit\": \"x\"}").is_err()
        );
        assert!(parse_history(
            "{\"schema\": \"anu-bench-history/v1\", \"commit\": \"x\", \"scale1_events_per_sec\": 0.0}"
        )
        .is_err());
    }

    #[test]
    fn compare_gates_at_threshold_of_best() {
        let history = vec![rec("old", 1.0e7), rec("best", 2.0e7), rec("mid", 1.5e7)];
        let pass = compare(&history, 1.7e7).expect("nonempty");
        assert!(pass.ok());
        assert!(!pass.improved());
        assert_eq!(pass.best_commit, "best");
        assert!(pass.verdict_line().starts_with("BENCH-RATCHET OK"));
        let fail = compare(&history, 1.5e7).expect("nonempty");
        assert!(!fail.ok(), "0.75x of best must fail");
        assert!(fail.verdict_line().starts_with("BENCH-RATCHET FAIL"));
        let better = compare(&history, 2.5e7).expect("nonempty");
        assert!(better.ok() && better.improved());
        assert!(compare(&[], 1.0e7).is_err(), "empty history cannot gate");
    }

    #[test]
    fn extract_manifest_reads_bench_and_overhead() {
        let manifest = r#"{
            "schema": "anu-bench-figures/v5",
            "trace_overhead": {"off_events_per_sec": 1e6, "on_events_per_sec": 9e5, "overhead_pct": 10.0},
            "bench": {
                "scale1_events_per_sec": 12000000.0,
                "scale_n_events_per_sec": 15000000.0,
                "queue": {"heap_events_per_sec": 15000000.0, "calendar_events_per_sec": 14000000.0}
            }
        }"#;
        let p = extract_manifest(manifest).expect("valid manifest");
        assert!((p.scale1_events_per_sec - 1.2e7).abs() < 1.0);
        assert_eq!(p.scale_n_events_per_sec, Some(1.5e7));
        assert_eq!(p.overhead_pct, Some(10.0));
    }

    #[test]
    fn extract_manifest_requires_a_bench_section() {
        assert!(extract_manifest(r#"{"bench": null}"#).is_err());
        assert!(extract_manifest(r#"{"schema": "x"}"#).is_err());
        assert!(extract_manifest("nope").is_err());
    }

    #[test]
    fn json_reader_handles_the_manifest_shapes() {
        let v = Val::parse(r#"{"a": [1, -2.5, 3e2], "b": "x\"y", "c": true, "d": null}"#)
            .expect("parses");
        let arr = match v.get("a") {
            Some(Val::Arr(items)) => items.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr, vec![Val::Num(1.0), Val::Num(-2.5), Val::Num(300.0)]);
        assert_eq!(v.get("b").and_then(Val::as_str), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Val::Bool(true)));
        assert_eq!(v.get("d"), Some(&Val::Null));
        assert!(Val::parse("{\"a\": 1} junk").is_err());
        assert!(Val::parse("{\"a\" 1}").is_err());
    }
}
