//! The v1 line-oriented scanner, frozen as a reference implementation.
//!
//! The live driver (see [`crate::scan_workspace`]) runs on the token
//! stream from [`crate::lexer`]. This module preserves the previous
//! textual strip-and-match scanner *verbatim* so the fixture corpus can
//! diff old-scanner vs new-scanner reports: the ten original lints must
//! reproduce identical findings on well-formed input, and the known v1
//! false-positive classes (byte raw strings leaking into the code view,
//! `#[cfg(test)]` brace desync) must show up here and *only* here.
//!
//! Nothing in this module should be edited except to delete it once the
//! differential tests have served their purpose.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{classify, FileContext, Lint, Report, Violation, WaiverRecord};

/// Scan the workspace rooted at `root` with the v1 line scanner.
///
/// Same traversal contract as [`crate::scan_workspace`]: library sources
/// of the root package and every `crates/*` member. The report's
/// `waived_by_lint` tallies are left empty (the field postdates v1).
pub fn scan_workspace_legacy(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            let src = entry.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let Some(ctx) = classify(root, &path) else {
            continue;
        };
        let text = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        scan_file(&text, &ctx, &mut report);
    }
    report
        .violations
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    report
        .waivers
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(report)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A waiver parsed from a source line.
#[derive(Clone, Debug, Default)]
struct LineInfo {
    /// Code with comments and string/char literal contents blanked out.
    code: String,
    /// Lints waived on this line (applies to this line and the next).
    waived: Vec<Lint>,
    /// The waiver's written justification, when one was parsed.
    waiver_reason: Option<String>,
    /// A waiver comment was present but malformed.
    bad_waiver: Option<String>,
    /// The line is a `///` or `//!` doc comment.
    doc_comment: bool,
    /// The raw line begins with exactly one `/` (not a comment): either a
    /// division continuation or a doc line that lost slashes.
    doc_slash: bool,
    /// The line is inside (or opens) a `#[cfg(test)]` module.
    in_test_cfg: bool,
}

/// Scan one file's text, appending findings to `report`.
fn scan_file(text: &str, ctx: &FileContext, report: &mut Report) {
    let lines = analyze_lines(text);

    let mut pending: Vec<(usize, Lint, String)> = Vec::new();

    for (idx, info) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if let Some(reason) = &info.bad_waiver {
            pending.push((lineno, Lint::Waiver, reason.clone()));
            continue;
        }
        if info.in_test_cfg {
            continue;
        }
        // A single-`/` line is only suspicious right next to a doc
        // comment: there it is almost certainly a `///` line that lost
        // slashes (rustc parses it as division and the diagnostics are
        // baffling). Division continuations sit between code lines and
        // never trip this.
        if info.doc_slash {
            let beside_doc = (idx > 0 && lines[idx - 1].doc_comment)
                || lines.get(idx + 1).is_some_and(|l| l.doc_comment);
            if beside_doc {
                pending.push((
                    lineno,
                    Lint::DocSlash,
                    "line starts with a single `/` beside a doc comment; a `///` doc line lost its slashes".to_string(),
                ));
            }
        }
        let code = info.code.as_str();

        if ctx.sim_path() {
            for token in ["Instant::now", "SystemTime"] {
                if code.contains(token) {
                    pending.push((
                        lineno,
                        Lint::WallClock,
                        format!("`{token}` reads the wall clock; simulations must be a pure function of seed and input"),
                    ));
                }
            }
            for token in [
                "thread_rng",
                "ThreadRng",
                "from_entropy",
                "OsRng",
                "getrandom",
            ] {
                if contains_word(code, token) {
                    pending.push((
                        lineno,
                        Lint::ThreadRng,
                        format!("`{token}` draws ambient entropy; use a seeded RngStream"),
                    ));
                }
            }
            for token in ["HashMap", "HashSet"] {
                if contains_word(code, token) {
                    pending.push((
                        lineno,
                        Lint::HashIteration,
                        format!(
                            "`{token}` has nondeterministic iteration order; use BTreeMap/BTreeSet"
                        ),
                    ));
                }
            }
        }
        if ctx.fixed_point() {
            if contains_word(code, "as") && !code.trim_start().starts_with("use ") {
                pending.push((
                    lineno,
                    Lint::AsCast,
                    "bare `as` cast in fixed-point arithmetic; use the checked num helpers"
                        .to_string(),
                ));
            }
            if (code.contains("==") || code.contains("!=")) && mentions_float(code) {
                pending.push((
                    lineno,
                    Lint::FloatCmp,
                    "float equality in fixed-point arithmetic; compare exact fixed-point units"
                        .to_string(),
                ));
            }
        }
        if ctx.library {
            for (token, what) in [
                (".unwrap()", "`.unwrap()`"),
                (".expect(", "`.expect()`"),
                ("panic!(", "`panic!`"),
            ] {
                if code.contains(token) {
                    pending.push((
                        lineno,
                        Lint::Panic,
                        format!("{what} in library code; return Result or restructure"),
                    ));
                }
            }
            for token in ["println!", "eprintln!", "print!", "eprint!"] {
                if contains_word(code, token) {
                    pending.push((
                        lineno,
                        Lint::Print,
                        format!("`{token}` in library code; emit a trace event or return the text to the caller"),
                    ));
                }
            }
            if let Some(item) = pub_item_name(code) {
                let cov = report.doc_coverage.entry(ctx.krate.clone()).or_default();
                cov.total += 1;
                if is_documented(&lines, idx) {
                    cov.documented += 1;
                } else {
                    pending.push((
                        lineno,
                        Lint::MissingDocs,
                        format!("public item `{item}` has no doc comment"),
                    ));
                }
            }
        }
    }

    // Apply waivers: a waiver on line N covers violations on N and N+1.
    let mut waiver_used = vec![false; lines.len()];
    for (lineno, lint, message) in pending {
        let own = lines
            .get(lineno - 1)
            .map(|l| l.waived.contains(&lint))
            .unwrap_or(false);
        let above = lineno >= 2
            && lines
                .get(lineno - 2)
                .map(|l| l.waived.contains(&lint))
                .unwrap_or(false);
        if lint != Lint::Waiver && (own || above) {
            report.waived += 1;
            let at = if own { lineno - 1 } else { lineno - 2 };
            waiver_used[at] = true;
        } else {
            report.violations.push(Violation {
                lint,
                file: ctx.rel.clone(),
                line: lineno,
                message,
            });
        }
    }

    // Record every well-formed waiver for the audit, used or not.
    for (idx, info) in lines.iter().enumerate() {
        if info.waived.is_empty() {
            continue;
        }
        report.waivers.push(WaiverRecord {
            file: ctx.rel.clone(),
            line: idx + 1,
            lints: info.waived.clone(),
            reason: info.waiver_reason.clone().unwrap_or_default(),
            used: waiver_used[idx],
        });
    }
}

/// Does `code` contain `word` delimited by non-identifier characters?
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Heuristic: does the line mention floating-point values (a float literal
/// like `1.5`, or the `f32`/`f64` type names)?
fn mentions_float(code: &str) -> bool {
    if contains_word(code, "f64") || contains_word(code, "f32") {
        return true;
    }
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    false
}

/// If `code` declares a `pub` item, return the item's name.
fn pub_item_name(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("pub ")?;
    // `pub(crate)` / `pub(super)` items are not part of the public API.
    let mut tokens = rest.split_whitespace().peekable();
    // Skip qualifiers to find the item keyword.
    let mut keyword = None;
    while let Some(&tok) = tokens.peek() {
        match tok {
            "const" => {
                // `pub const fn` is a function; `pub const NAME` a constant.
                let mut clone = tokens.clone();
                clone.next();
                if clone.peek() == Some(&"fn") {
                    tokens.next();
                    continue;
                }
                keyword = Some("const");
                tokens.next();
                break;
            }
            "async" | "unsafe" | "extern" => {
                tokens.next();
            }
            "fn" | "struct" | "enum" | "trait" | "mod" | "static" | "type" | "union" => {
                keyword = Some(tok);
                tokens.next();
                break;
            }
            _ => return None,
        }
    }
    let kw = keyword?;
    let name = tokens.next()?;
    // `pub mod foo;` declares an external module whose documentation lives
    // as `//!` inner docs in the module file.
    if kw == "mod" && trimmed.trim_end().ends_with(';') {
        return None;
    }
    let name: String = name
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Is the `pub` item on `idx` preceded by a doc comment (skipping
/// attributes)?
fn is_documented(lines: &[LineInfo], idx: usize) -> bool {
    let mut i = idx;
    let mut attr_depth: i32 = 0;
    while i > 0 {
        i -= 1;
        let info = &lines[i];
        if info.doc_comment {
            return true;
        }
        let t = info.code.trim();
        let opens = t.chars().filter(|&c| c == '[').count() as i32;
        let closes = t.chars().filter(|&c| c == ']').count() as i32;
        if t.starts_with("#[") || attr_depth > 0 {
            attr_depth += opens - closes;
            continue;
        }
        if t.is_empty() {
            continue;
        }
        return false;
    }
    false
}

/// Split `text` into lines with comments/strings blanked, waivers parsed,
/// and `#[cfg(test)]` regions marked.
fn analyze_lines(text: &str) -> Vec<LineInfo> {
    let (stripped, comments) = strip_non_code(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();
    let comment_lines: Vec<&str> = comments.lines().collect();

    let mut out = Vec::with_capacity(raw_lines.len());
    let mut test_depth: i32 = -1; // brace depth when a cfg(test) region closes
    let mut depth: i32 = 0;
    let mut pending_test_cfg = false;

    for (i, raw) in raw_lines.iter().enumerate() {
        let code = code_lines.get(i).copied().unwrap_or("").to_string();
        let mut info = LineInfo {
            code,
            ..LineInfo::default()
        };
        let trimmed_raw = raw.trim_start();
        info.doc_comment = trimmed_raw.starts_with("///") || trimmed_raw.starts_with("//!");
        info.doc_slash =
            (trimmed_raw.starts_with("/ ") || trimmed_raw == "/") && !info.code.trim().is_empty();

        let cmt = comment_lines.get(i).copied().unwrap_or("");
        if !info.doc_comment {
            if let Some(pos) = cmt.find("anu-lint:") {
                crate::parse_waiver_into(
                    &cmt[pos..],
                    &mut info.waived,
                    &mut info.waiver_reason,
                    &mut info.bad_waiver,
                );
            }
        }

        // cfg(test) region tracking, on the code view.
        let t = info.code.trim();
        if t.starts_with("#[cfg(") && t.contains("test") {
            pending_test_cfg = true;
        }
        let opens = info.code.chars().filter(|&c| c == '{').count() as i32;
        let closes = info.code.chars().filter(|&c| c == '}').count() as i32;
        let in_test = test_depth >= 0;
        if pending_test_cfg && opens > 0 {
            test_depth = depth;
            pending_test_cfg = false;
            info.in_test_cfg = true;
        } else {
            info.in_test_cfg = in_test || pending_test_cfg;
        }
        depth += opens - closes;
        if test_depth >= 0 && depth <= test_depth {
            test_depth = -1;
        }
        out.push(info);
    }
    out
}

/// Produce two parallel views of `text`, both preserving line structure:
/// a *code view* with comments and string/char-literal contents blanked,
/// and a *comment view* with everything except comment text blanked.
fn strip_non_code(text: &str) -> (String, String) {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut cmt = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Push a byte to the code view and blank it in the comment view.
    fn code(out: &mut Vec<u8>, cmt: &mut Vec<u8>, b: u8) {
        out.push(b);
        cmt.push(if b == b'\n' { b'\n' } else { b' ' });
    }
    // Push a byte to the comment view and blank it in the code view.
    fn comment(out: &mut Vec<u8>, cmt: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
        cmt.push(b);
    }
    // Blank a byte in both views.
    fn neither(out: &mut Vec<u8>, cmt: &mut Vec<u8>, b: u8) {
        let keep = if b == b'\n' { b'\n' } else { b' ' };
        out.push(keep);
        cmt.push(keep);
    }

    #[derive(PartialEq)]
    enum Mode {
        Code,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let mut mode = Mode::Code;

    while i < bytes.len() {
        let b = bytes[i];
        match mode {
            Mode::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        comment(&mut out, &mut cmt, bytes[i]);
                        i += 1;
                    }
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::Block(1);
                    comment(&mut out, &mut cmt, b'/');
                    comment(&mut out, &mut cmt, b'*');
                    i += 2;
                } else if b == b'r'
                    && (bytes.get(i + 1) == Some(&b'"') || bytes.get(i + 1) == Some(&b'#'))
                    && (i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_'))
                {
                    // Raw string r"..." or r#"..."# etc. NOTE: the prefix
                    // test above is exactly the v1 bug the lexer fixes —
                    // `br#"…"#` is rejected here because the `r` follows
                    // an alphanumeric `b`, so its contents leak as code.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        for _ in 0..hashes + 2 {
                            neither(&mut out, &mut cmt, b' ');
                        }
                        i = j + 1;
                        mode = Mode::RawStr(hashes);
                    } else {
                        code(&mut out, &mut cmt, b);
                        i += 1;
                    }
                } else if b == b'"' {
                    code(&mut out, &mut cmt, b'"');
                    i += 1;
                    mode = Mode::Str;
                } else if b == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\\') {
                        code(&mut out, &mut cmt, b'\'');
                        i += 1;
                        while i < bytes.len() && bytes[i] != b'\'' {
                            neither(&mut out, &mut cmt, b' ');
                            i += 1;
                        }
                        if i < bytes.len() {
                            code(&mut out, &mut cmt, b'\'');
                            i += 1;
                        }
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        code(&mut out, &mut cmt, b'\'');
                        neither(&mut out, &mut cmt, b' ');
                        code(&mut out, &mut cmt, b'\'');
                        i += 3;
                    } else {
                        code(&mut out, &mut cmt, b);
                        i += 1;
                    }
                } else {
                    code(&mut out, &mut cmt, b);
                    i += 1;
                }
            }
            Mode::Block(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::Block(depth + 1);
                    comment(&mut out, &mut cmt, b'/');
                    comment(&mut out, &mut cmt, b'*');
                    i += 2;
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if depth > 1 {
                        Mode::Block(depth - 1)
                    } else {
                        Mode::Code
                    };
                    comment(&mut out, &mut cmt, b'*');
                    comment(&mut out, &mut cmt, b'/');
                    i += 2;
                } else {
                    comment(&mut out, &mut cmt, b);
                    i += 1;
                }
            }
            Mode::Str => {
                if b == b'\\' {
                    neither(&mut out, &mut cmt, b' ');
                    neither(
                        &mut out,
                        &mut cmt,
                        bytes.get(i + 1).copied().unwrap_or(b' '),
                    );
                    i += 2;
                } else if b == b'"' {
                    code(&mut out, &mut cmt, b'"');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    neither(&mut out, &mut cmt, b);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes + 1 {
                            neither(&mut out, &mut cmt, b' ');
                        }
                        i += hashes + 1;
                        mode = Mode::Code;
                        continue;
                    }
                }
                neither(&mut out, &mut cmt, b);
                i += 1;
            }
        }
    }
    (
        String::from_utf8_lossy(&out).into_owned(),
        String::from_utf8_lossy(&cmt).into_owned(),
    )
}
