//! The `rng-discipline` lint: every `RngStream` must be derived from the
//! experiment seed with a literal fork label, and never visibly shared
//! across `thread::scope` closures.
//!
//! The parallel sweep engine only reproduces byte-identical results at
//! any `--jobs N` because every task draws from its own stream, forked
//! deterministically from `task_seed(base_seed, task_id)` plus a stable
//! label. Two mistakes silently break that:
//!
//! 1. seeding a stream from anything other than the experiment seed
//!    (a loop index, a constant, another stream's output), or forking
//!    without a stable label — draws stop being a pure function of
//!    (seed, membership);
//! 2. moving one stream into several `thread::scope` closures — draw
//!    order then depends on thread interleaving.
//!
//! This analysis finds `RngStream::new(seed, label)` /
//! `RngStream::for_task(base, task, label)` construction sites in the
//! token stream and checks the seed argument mentions the experiment
//! seed (`task_seed`, `seed`, `*_seed`, `cfg.seed`, …) and the label
//! argument contains a string literal. It also records `let` bindings of
//! streams and flags any such binding referenced inside a `spawn(…)`
//! closure of a later `thread::scope` region. It is a visibility
//! heuristic, not a borrow checker: streams smuggled through structs are
//! out of scope (and caught at review), but the patterns that actually
//! appear in sweep code are covered.

use crate::lexer::{LineView, Token, TokenKind};
use crate::{FileContext, Lint};

/// Run the RNG-discipline analysis over one file's tokens.
pub(crate) fn check(
    src: &str,
    tokens: &[Token],
    views: &[LineView],
    ctx: &FileContext,
) -> Vec<(usize, Lint, String)> {
    if !ctx.library {
        return Vec::new();
    }
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let mut out = Vec::new();
    let in_test = |line: usize| views.get(line - 1).is_some_and(|v| v.in_test_cfg);

    // Pass 1: construction sites + stream bindings.
    let mut bindings: Vec<(String, usize)> = Vec::new(); // (name, token index)
    for i in 0..toks.len() {
        if !(toks[i].kind == TokenKind::Ident && toks[i].text(src) == "RngStream") {
            continue;
        }
        // Record `let [mut] name = RngStream::…` / `let name: RngStream`.
        if let Some(name) = binding_name(src, &toks, i) {
            bindings.push((name, i));
        }
        let Some(method) = toks
            .get(i + 1)
            .filter(|t| t.text(src) == "::")
            .and_then(|_| toks.get(i + 2))
            .map(|t| t.text(src))
        else {
            continue;
        };
        if !matches!(method, "new" | "for_task") {
            continue;
        }
        if toks.get(i + 3).map(|t| t.text(src)) != Some("(") {
            continue;
        }
        if in_test(toks[i].line) {
            continue;
        }
        let args = split_args(src, &toks, i + 3);
        let (seed_ok, label_ok, label_pos) = match (method, args.len()) {
            ("new", 2) => (arg_mentions_seed(&args[0]), arg_has_literal(&args[1]), 1),
            ("for_task", 3) => (arg_mentions_seed(&args[0]), arg_has_literal(&args[2]), 2),
            // Different arity: not the constructor shape we police
            // (e.g. mentioned in a path or a changed API).
            _ => continue,
        };
        if !seed_ok {
            out.push((
                toks[i].line,
                Lint::RngDiscipline,
                format!(
                    "`RngStream::{method}` seeded from `{}`; derive it from the experiment seed \
                     (`task_seed(...)` or a `*seed` value) so draws are a pure function of seed \
                     and membership",
                    args.first()
                        .map(|a| a.text.trim().to_string())
                        .unwrap_or_default()
                ),
            ));
        }
        if !label_ok {
            out.push((
                toks[i].line,
                Lint::RngDiscipline,
                format!(
                    "`RngStream::{method}` fork label `{}` is not a string literal; stable \
                     literal labels keep streams decorrelated and reproducible",
                    args.get(label_pos)
                        .map(|a| a.text.trim().to_string())
                        .unwrap_or_default()
                ),
            ));
        }
    }

    // Pass 2: streams shared across thread::scope closures.
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_scope = toks[i].text(src) == "thread"
            && toks[i + 1].text(src) == "::"
            && toks[i + 2].text(src) == "scope";
        if !is_scope {
            i += 1;
            continue;
        }
        let Some(open) = toks
            .get(i + 3)
            .filter(|t| t.text(src) == "(")
            .map(|_| i + 3)
        else {
            i += 3;
            continue;
        };
        let close = matching_paren(src, &toks, open);
        // Bindings made before the scope region are outer streams.
        let outer: Vec<&(String, usize)> = bindings.iter().filter(|(_, bi)| *bi < i).collect();
        let mut flagged: Vec<&str> = Vec::new();
        let mut j = open + 1;
        while j < close {
            if toks[j].text(src) == "spawn" && toks.get(j + 1).is_some_and(|t| t.text(src) == "(") {
                let sp_close = matching_paren(src, &toks, j + 1);
                for &t in &toks[j + 2..sp_close] {
                    if t.kind != TokenKind::Ident {
                        continue;
                    }
                    let name = t.text(src);
                    if outer.iter().any(|(n, _)| n == name)
                        && !flagged.contains(&name)
                        && !in_test(t.line)
                    {
                        flagged.push(name);
                        out.push((
                            t.line,
                            Lint::RngDiscipline,
                            format!(
                                "RngStream `{name}` is shared across `thread::scope` closures; \
                                 derive a per-task stream from `task_seed` inside each task"
                            ),
                        ));
                    }
                }
                j = sp_close;
            }
            j += 1;
        }
        i = close + 1;
    }

    out
}

/// One comma-separated top-level argument of a call.
struct Arg {
    /// The argument's source text (token texts joined by spaces).
    text: String,
    /// Kinds of the argument's tokens.
    kinds: Vec<TokenKind>,
    /// Ident texts within the argument.
    idents: Vec<String>,
}

/// Split the balanced parenthesized call starting at `toks[open]` (a `(`)
/// into top-level comma-separated arguments.
fn split_args(src: &str, toks: &[&Token], open: usize) -> Vec<Arg> {
    let close = matching_paren(src, toks, open);
    let mut args = Vec::new();
    let mut cur = Arg {
        text: String::new(),
        kinds: Vec::new(),
        idents: Vec::new(),
    };
    let mut depth = 0i32;
    for &t in &toks[open + 1..close] {
        let text = t.text(src);
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                args.push(cur);
                cur = Arg {
                    text: String::new(),
                    kinds: Vec::new(),
                    idents: Vec::new(),
                };
                continue;
            }
            _ => {}
        }
        if !cur.text.is_empty() {
            cur.text.push(' ');
        }
        cur.text.push_str(text);
        cur.kinds.push(t.kind);
        if t.kind == TokenKind::Ident {
            cur.idents.push(text.to_string());
        }
    }
    if !cur.text.is_empty() || !args.is_empty() {
        args.push(cur);
    }
    args
}

/// Index of the `)` matching the `(` at `toks[open]` (or the last token).
fn matching_paren(src: &str, toks: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        match toks[k].text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Does the seed argument visibly derive from the experiment seed?
fn arg_mentions_seed(arg: &Arg) -> bool {
    arg.idents.iter().any(|id| {
        id == "seed" || id.ends_with("_seed") || id == "task_seed" || id.starts_with("seed_")
    })
}

/// Does the label argument contain a string literal?
fn arg_has_literal(arg: &Arg) -> bool {
    arg.kinds
        .iter()
        .any(|k| matches!(k, TokenKind::Str | TokenKind::RawStr | TokenKind::ByteStr))
}

/// If `toks[rng_idx]` (an `RngStream` ident) sits in a `let` binding,
/// return the bound name: `let [mut] NAME [: RngStream] = RngStream::…`.
fn binding_name(src: &str, toks: &[&Token], rng_idx: usize) -> Option<String> {
    // Walk back over `=` or over a `: RngStream` type ascription.
    let mut i = rng_idx;
    // Previous token is `:` (type ascription) or `=` (the initializer).
    if i >= 1 && matches!(toks[i - 1].text(src), ":" | "=") {
        i -= 1;
    } else {
        return None;
    }
    let name_tok = toks.get(i.checked_sub(1)?)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text(src);
    let before = toks.get(i.checked_sub(2)?)?.text(src);
    if before == "let" || (before == "mut" && toks.get(i.checked_sub(3)?)?.text(src) == "let") {
        Some(name.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn findings(src: &str) -> Vec<(usize, Lint, String)> {
        let ctx = FileContext {
            rel: "crates/harness/src/runner.rs".into(),
            krate: "anu-harness".into(),
            crate_dir: "harness".into(),
            library: true,
        };
        let tokens = lexer::lex(src);
        let views = lexer::line_views(src, &tokens);
        check(src, &tokens, &views, &ctx)
    }

    #[test]
    fn seed_derived_streams_pass() {
        for src in [
            "fn f(seed: u64) { let r = RngStream::new(seed, \"arrivals\"); }\n",
            "fn f(base_seed: u64, id: u64) { let r = RngStream::for_task(base_seed, id, \"svc\"); }\n",
            "fn f(cfg: &Cfg) { let r = RngStream::new(cfg.seed, \"jitter\"); }\n",
            "fn f(s: u64, t: u64) { let r = RngStream::new(task_seed(s, t), \"x\"); }\n",
        ] {
            assert!(findings(src).is_empty(), "false positive on: {src}");
        }
    }

    #[test]
    fn constant_seed_is_flagged() {
        let f = findings("fn f() { let r = RngStream::new(42, \"arrivals\"); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("seeded from `42`"), "{}", f[0].2);
    }

    #[test]
    fn loop_index_seed_is_flagged() {
        let f = findings("fn f(i: u64) { let r = RngStream::new(i, \"x\"); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn non_literal_label_is_flagged() {
        let f = findings("fn f(seed: u64, label: &str) { let r = RngStream::new(seed, label); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("fork label"), "{}", f[0].2);
    }

    #[test]
    fn format_label_with_literal_passes() {
        // A formatted label still embeds a literal prefix — allowed (the
        // stable part is visible).
        let src =
            "fn f(seed: u64, i: u64) { let r = RngStream::new(seed, &format!(\"task-{i}\")); }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn shared_stream_across_scope_is_flagged() {
        let src = "\
fn f(seed: u64) {
    let mut shared = RngStream::new(seed, \"sweep\");
    std::thread::scope(|s| {
        s.spawn(|| shared.next_u64());
    });
}
";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].2.contains("shared across `thread::scope`"),
            "{}",
            f[0].2
        );
    }

    #[test]
    fn per_task_stream_inside_scope_passes() {
        let src = "\
fn f(seed: u64) {
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut rng = RngStream::for_task(seed, 3, \"task\");
            rng.next_u64()
        });
    });
}
";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let r = RngStream::new(7, \"p\"); }\n}\n";
        assert!(findings(src).is_empty());
    }
}
