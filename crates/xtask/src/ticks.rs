//! The `tick-arith` lint: arithmetic on tick and fixed-point values must
//! go through saturating/checked helpers in the designated newtype
//! modules.
//!
//! `SimTime`/`SimDuration` (µs ticks in a `u64`) and interval positions
//! (`Pos`, 64-bit fixed point) are the two places where a silent wrap
//! would corrupt *every* downstream figure while staying bitwise
//! deterministic — the worst kind of bug, invisible to the determinism
//! gates. Inside their home modules ([`DESIGNATED`]) this lint flags
//! every bare binary `+` `-` `*` (and `+=` `-=` `*=`): the operators
//! must be implemented in terms of `saturating_add`/`saturating_sub`/
//! `saturating_mul` or the checked `anu_core::num` helpers, so overflow
//! is impossible by construction rather than by argument.
//!
//! Pure float arithmetic is exempt (floats saturate to ±inf on their
//! own): an operator whose neighboring operand is a float literal or an
//! `f32`/`f64` ident is skipped. Unary minus, derefs, and generic
//! brackets are distinguished from binary operators on the token stream.

use crate::lexer::{self, LineView, Token, TokenKind};
use crate::{FileContext, Lint};

/// The tick/fixed-point newtype modules, as (crate dir, basename).
const DESIGNATED: [(&str, &str); 2] = [("des", "time.rs"), ("core", "interval.rs")];

/// Binary operators that must not appear bare on tick values.
const OPS: [&str; 6] = ["+", "-", "*", "+=", "-=", "*="];

/// Keywords that end a statement/expression context: an operator right
/// after one of these is a unary sign, not binary arithmetic.
const NON_VALUE_KEYWORDS: [&str; 9] = [
    "return", "break", "continue", "if", "else", "match", "in", "while", "where",
];

/// Run the tick-arithmetic analysis over one file's tokens.
pub(crate) fn check(
    src: &str,
    tokens: &[Token],
    views: &[LineView],
    ctx: &FileContext,
) -> Vec<(usize, Lint, String)> {
    if !DESIGNATED
        .iter()
        .any(|(dir, base)| *dir == ctx.crate_dir && *base == ctx.basename())
    {
        return Vec::new();
    }
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let mut out = Vec::new();

    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Punct {
            continue;
        }
        let op = t.text(src);
        if !OPS.contains(&op) {
            continue;
        }
        if views.get(t.line - 1).is_some_and(|v| v.in_test_cfg) {
            continue;
        }
        // Binary only: the previous token must end a value.
        let Some(prev) = i.checked_sub(1).map(|p| toks[p]) else {
            continue;
        };
        let prev_text = prev.text(src);
        let prev_is_value = match prev.kind {
            TokenKind::Ident => !NON_VALUE_KEYWORDS.contains(&prev_text),
            TokenKind::Number | TokenKind::CharLit | TokenKind::Str => true,
            TokenKind::Punct => matches!(prev_text, ")" | "]" | "?"),
            _ => false,
        };
        if !prev_is_value {
            continue;
        }
        // Float exemption: a float literal or f32/f64 ident on either side.
        let next = toks.get(i + 1);
        let is_floaty = |tok: &Token| match tok.kind {
            TokenKind::Number => lexer::is_float_literal(tok.text(src)),
            TokenKind::Ident => matches!(tok.text(src), "f32" | "f64"),
            _ => false,
        };
        if is_floaty(prev) || next.is_some_and(|n| is_floaty(n)) {
            continue;
        }
        out.push((
            t.line,
            Lint::TickArith,
            format!(
                "bare `{op}` on tick/fixed-point values; use `saturating_add`/`saturating_sub`/\
                 `saturating_mul` or the checked `num` helpers so overflow is impossible by \
                 construction"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn findings(src: &str, crate_dir: &str, base: &str) -> Vec<(usize, Lint, String)> {
        let ctx = FileContext {
            rel: format!("crates/{crate_dir}/src/{base}"),
            krate: format!("anu-{crate_dir}"),
            crate_dir: crate_dir.to_string(),
            library: true,
        };
        let tokens = lexer::lex(src);
        let views = lexer::line_views(src, &tokens);
        check(src, &tokens, &views, &ctx)
    }

    #[test]
    fn bare_add_in_time_rs_is_flagged() {
        let f = findings("fn f(a: u64, b: u64) -> u64 { a + b }\n", "des", "time.rs");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, Lint::TickArith);
    }

    #[test]
    fn saturating_helpers_pass() {
        let src = "fn f(a: u64, b: u64) -> u64 { a.saturating_add(b).saturating_mul(2) }\n";
        assert!(findings(src, "des", "time.rs").is_empty());
    }

    #[test]
    fn compound_assign_is_flagged() {
        let f = findings("fn f(a: &mut u64, b: u64) { *a += b; }\n", "des", "time.rs");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn unary_minus_and_deref_pass() {
        for src in [
            "fn f(a: i64) -> i64 { -a }\n",
            "fn f() -> i64 { return -1; }\n",
            "fn f(p: &u64) -> u64 { *p }\n",
            "fn g(xs: &[i64]) -> i64 { xs[0] }\n",
        ] {
            assert!(
                findings(src, "core", "interval.rs").is_empty(),
                "false positive on: {src}"
            );
        }
    }

    #[test]
    fn float_arithmetic_is_exempt() {
        for src in [
            "fn f(s: f64) -> f64 { s * 1e6 }\n",
            "fn f(x: f64) -> f64 { x - 1.0 }\n",
            "fn f(x: u64) -> f64 { x as f64 * 0.5 }\n",
        ] {
            assert!(
                findings(src, "des", "time.rs").is_empty(),
                "false positive on: {src}"
            );
        }
    }

    #[test]
    fn integer_multiply_is_flagged() {
        let f = findings("fn f(s: u64) -> u64 { s * 1_000_000 }\n", "des", "time.rs");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn only_designated_files_are_checked() {
        let src = "fn f(a: u64, b: u64) -> u64 { a + b }\n";
        assert!(findings(src, "des", "calendar.rs").is_empty());
        assert!(findings(src, "core", "shares.rs").is_empty());
        assert!(findings(src, "cluster", "time.rs").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() -> u64 { 1 + 2 }\n}\n";
        assert!(findings(src, "des", "time.rs").is_empty());
    }

    #[test]
    fn generic_angle_brackets_do_not_confuse() {
        // `Vec<u64>` etc: `>` is not in OPS; `-` after `>` is unary-ish
        // but `>` is not a value end… it is Punct and not in the list, so
        // `-` after a generic close would be skipped. Real subtraction
        // after a cast or call still flags.
        let f = findings("fn f(a: u64) -> u64 { a.max(1) - 1 }\n", "des", "time.rs");
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
