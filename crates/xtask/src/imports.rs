//! The `import-graph` lint: sim-path crates may only import what the
//! committed allowed-dependency matrix grants them.
//!
//! The line lints (`wall-clock`, `thread-rng`, …) match *call sites*;
//! they are blind to `use std::time::Instant as Timer;` followed by
//! `Timer::now()`. This analysis closes that hole at the declaration:
//! every `use` tree in a sim-path crate is parsed from the token stream
//! into its leaf paths (aliases and grouped imports included) and checked
//! against three rules:
//!
//! 1. **Crate matrix** — a sim-path crate may only name the workspace
//!    crates listed in [`ALLOWED_DEPS`]; the harness/bench/xtask crates
//!    are never importable from the sim path.
//! 2. **Forbidden `std` surfaces** — `std::{time, fs, io, net, process,
//!    env, thread}` give simulated code access to wall clocks, ambient
//!    state, or scheduling; `std::time` is restricted to its clock types
//!    (`Duration` is pure data and allowed).
//! 3. **Entropy types** — `RandomState` / `DefaultHasher` seed from the
//!    process RNG no matter how they are spelled or aliased.

use crate::lexer::{LineView, Token, TokenKind};
use crate::{FileContext, Lint};

/// The committed allowed-dependency matrix for sim-path crates, keyed by
/// crate directory. This mirrors (and pins) the `Cargo.toml` dependency
/// edges: adding an edge here is a reviewed decision, not a side effect
/// of editing a manifest.
const ALLOWED_DEPS: [(&str, &[&str]); 5] = [
    ("core", &[]),
    ("des", &[]),
    ("trace", &["anu_core", "anu_des"]),
    (
        "cluster",
        &["anu_core", "anu_des", "anu_trace", "anu_workload"],
    ),
    (
        "policies",
        &["anu_core", "anu_des", "anu_workload", "anu_cluster"],
    ),
];

/// `std`/`core` submodules the sim path may never touch wholesale.
const FORBIDDEN_STD: [&str; 6] = ["fs", "io", "net", "process", "env", "thread"];

/// Types within `std::time` that read clocks (`Duration` is pure data).
const CLOCK_TYPES: [&str; 4] = ["Instant", "SystemTime", "SystemTimeError", "UNIX_EPOCH"];

/// Hash types that seed from process entropy, wherever they live.
const ENTROPY_TYPES: [&str; 2] = ["RandomState", "DefaultHasher"];

/// One leaf of a parsed `use` tree.
struct Leaf {
    /// Full path segments from the tree root (`["std", "time", "Instant"]`);
    /// a glob leaf ends in `"*"`.
    path: Vec<String>,
    /// The `as` rename, when present.
    alias: Option<String>,
    /// Line of the leaf's last segment.
    line: usize,
}

/// Run the import-graph analysis over one file's tokens.
pub(crate) fn check(
    src: &str,
    tokens: &[Token],
    views: &[LineView],
    ctx: &FileContext,
) -> Vec<(usize, Lint, String)> {
    if !ctx.sim_path() {
        return Vec::new();
    }
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let mut out = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Ident && t.text(src) == "use" {
            // `use` declarations inside #[cfg(test)] regions are exempt,
            // like everything else in test code.
            let in_test = views.get(t.line - 1).is_some_and(|v| v.in_test_cfg);
            let (leaves, next) = parse_use_tree(src, &toks, i + 1);
            if !in_test {
                for leaf in &leaves {
                    check_leaf(ctx, leaf, &mut out);
                }
            }
            i = next;
        } else {
            i += 1;
        }
    }
    out
}

/// Check one resolved import leaf against the three rules.
fn check_leaf(ctx: &FileContext, leaf: &Leaf, out: &mut Vec<(usize, Lint, String)>) {
    let Some(root) = leaf.path.first() else {
        return;
    };
    let alias_note = |leaf: &Leaf| match &leaf.alias {
        Some(a) => format!(" (aliased as `{a}`)"),
        None => String::new(),
    };

    // Rule 1: workspace-crate matrix.
    if root.starts_with("anu_") {
        let allowed = ALLOWED_DEPS
            .iter()
            .find(|(dir, _)| *dir == ctx.crate_dir)
            .map(|(_, deps)| *deps)
            .unwrap_or(&[]);
        if !allowed.contains(&root.as_str()) {
            out.push((
                leaf.line,
                Lint::ImportGraph,
                format!(
                    "`{}` is outside the allowed-dependency matrix for sim-path crate `{}`{}",
                    root,
                    ctx.krate,
                    alias_note(leaf)
                ),
            ));
            return;
        }
    }

    // Rules 2–3 concern std/core/alloc paths and entropy types.
    let is_std_root = matches!(root.as_str(), "std" | "core" | "alloc");
    if is_std_root {
        if let Some(second) = leaf.path.get(1) {
            if FORBIDDEN_STD.contains(&second.as_str()) {
                out.push((
                    leaf.line,
                    Lint::ImportGraph,
                    format!(
                        "`{}::{}` is an ambient-state surface; sim-path code must stay a pure \
                         function of seed and input{}",
                        root,
                        second,
                        alias_note(leaf)
                    ),
                ));
                return;
            }
            if second == "time" {
                // The module itself, a glob, or one of the clock types:
                // all give access to wall clocks (possibly via alias).
                let third = leaf.path.get(2).map(String::as_str);
                let hits_clock = match third {
                    None => true,
                    Some("*") => true,
                    Some(t) => CLOCK_TYPES.contains(&t),
                };
                if hits_clock {
                    out.push((
                        leaf.line,
                        Lint::ImportGraph,
                        format!(
                            "`{}` imports a wall-clock surface; aliases do not hide it \
                             (`Duration` alone is pure data and allowed){}",
                            leaf.path.join("::"),
                            alias_note(leaf)
                        ),
                    ));
                    return;
                }
            }
        }
    }

    // Rule 3: entropy types anywhere in the path.
    for seg in &leaf.path {
        if ENTROPY_TYPES.contains(&seg.as_str()) {
            out.push((
                leaf.line,
                Lint::ImportGraph,
                format!(
                    "`{}` seeds from process entropy; deterministic code must hash with \
                     explicit seeds{}",
                    leaf.path.join("::"),
                    alias_note(leaf)
                ),
            ));
            return;
        }
    }
}

/// Parse the use tree starting after the `use` keyword at `toks[start]`.
/// Returns the flattened leaves and the index just past the tree (the
/// terminating `;` when well-formed).
fn parse_use_tree(src: &str, toks: &[&Token], start: usize) -> (Vec<Leaf>, usize) {
    let mut leaves = Vec::new();
    let mut i = start;
    // Leading `::` (2018-style absolute paths).
    if toks.get(i).is_some_and(|t| t.text(src) == "::") {
        i += 1;
    }
    i = parse_tree(src, toks, i, &Vec::new(), &mut leaves);
    // Advance to just past the `;` if present; otherwise (malformed or
    // macro-generated) stop without consuming further.
    if toks.get(i).is_some_and(|t| t.text(src) == ";") {
        return (leaves, i + 1);
    }
    (leaves, i)
}

/// Recursive descent over one branch of a use tree.
fn parse_tree(
    src: &str,
    toks: &[&Token],
    mut i: usize,
    prefix: &[String],
    leaves: &mut Vec<Leaf>,
) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut line = toks.get(i).map(|t| t.line).unwrap_or(1);

    while let Some(t) = toks.get(i) {
        let text = t.text(src);
        if text == "{" {
            // Grouped subtree: recurse per comma-separated branch.
            i += 1;
            loop {
                match toks.get(i).map(|t| t.text(src)) {
                    Some("}") => {
                        i += 1;
                        break;
                    }
                    Some(",") => {
                        i += 1;
                    }
                    Some(_) => {
                        i = parse_tree(src, toks, i, &segs, leaves);
                    }
                    None => break,
                }
            }
            return i;
        }
        if t.kind == TokenKind::Ident && text == "as" {
            let alias = toks
                .get(i + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(src).to_string());
            let step = if alias.is_some() { 2 } else { 1 };
            if !segs.is_empty() {
                leaves.push(Leaf {
                    path: segs,
                    alias,
                    line,
                });
            }
            return i + step;
        }
        if t.kind == TokenKind::Ident || text == "*" {
            segs.push(text.to_string());
            line = t.line;
            i += 1;
            if toks.get(i).is_some_and(|t| t.text(src) == "::") {
                i += 1;
                continue;
            }
            // End of this branch (`,`, `}`, `;`, or `as` handled above).
            if toks
                .get(i)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text(src) == "as")
            {
                continue;
            }
            leaves.push(Leaf {
                path: segs,
                alias: None,
                line,
            });
            return i;
        }
        // Anything else ends the branch.
        break;
    }
    if !segs.is_empty() && segs.len() > prefix.len() {
        leaves.push(Leaf {
            path: segs,
            alias: None,
            line,
        });
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn findings(src: &str, crate_dir: &str) -> Vec<(usize, Lint, String)> {
        let ctx = FileContext {
            rel: format!("crates/{crate_dir}/src/lib.rs"),
            krate: format!("anu-{crate_dir}"),
            crate_dir: crate_dir.to_string(),
            library: true,
        };
        let tokens = lexer::lex(src);
        let views = lexer::line_views(src, &tokens);
        check(src, &tokens, &views, &ctx)
    }

    #[test]
    fn allowed_matrix_edges_pass() {
        assert!(findings("use anu_core::interval::Pos;\n", "trace").is_empty());
        assert!(findings("use anu_workload::Job;\n", "cluster").is_empty());
        assert!(findings("use std::collections::BTreeMap;\n", "core").is_empty());
        assert!(findings("use std::fmt;\n", "des").is_empty());
    }

    #[test]
    fn harness_import_from_sim_path_fails() {
        let f = findings("use anu_harness::runner::Runner;\n", "core");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, Lint::ImportGraph);
        assert!(f[0].2.contains("anu_harness"), "{}", f[0].2);
    }

    #[test]
    fn matrix_respects_direction() {
        // trace may use core, but core may not use trace.
        assert!(findings("use anu_des::time::SimTime;\n", "trace").is_empty());
        assert_eq!(findings("use anu_trace::Event;\n", "core").len(), 1);
        // cluster may not reach policies (it is the other way around).
        assert_eq!(
            findings("use anu_policies::anu::Anu;\n", "cluster").len(),
            1
        );
    }

    #[test]
    fn aliased_std_time_is_caught() {
        let f = findings("use std::time as t;\n", "des");
        assert_eq!(f.len(), 1);
        assert!(f[0].2.contains("aliased as `t`"), "{}", f[0].2);
        let f = findings("use std::time::Instant as Timer;\n", "core");
        assert_eq!(f.len(), 1);
        assert!(f[0].2.contains("Timer"), "{}", f[0].2);
    }

    #[test]
    fn duration_alone_is_allowed() {
        assert!(findings("use std::time::Duration;\n", "des").is_empty());
        // But a glob over std::time is not.
        assert_eq!(findings("use std::time::*;\n", "des").len(), 1);
    }

    #[test]
    fn grouped_imports_check_each_leaf() {
        let f = findings(
            "use std::{fmt, io::Write, collections::BTreeMap};\n",
            "core",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("std::io"), "{}", f[0].2);
    }

    #[test]
    fn entropy_types_caught_through_alias() {
        let f = findings(
            "use std::collections::hash_map::RandomState as Hasher;\n",
            "cluster",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].2.contains("entropy"), "{}", f[0].2);
    }

    #[test]
    fn forbidden_std_surfaces() {
        for m in ["fs", "io", "net", "process", "env", "thread"] {
            let f = findings(&format!("use std::{m};\n"), "policies");
            assert_eq!(f.len(), 1, "std::{m} must be flagged");
        }
    }

    #[test]
    fn cfg_test_imports_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::io::Write;\n}\n";
        assert!(findings(src, "core").is_empty());
    }

    #[test]
    fn non_sim_crates_are_out_of_scope() {
        let ctx = FileContext {
            rel: "crates/harness/src/lib.rs".into(),
            krate: "anu-harness".into(),
            crate_dir: "harness".into(),
            library: true,
        };
        let src = "use std::time::Instant;\n";
        let tokens = lexer::lex(src);
        let views = lexer::line_views(src, &tokens);
        assert!(check(src, &tokens, &views, &ctx).is_empty());
    }
}
