//! The lint ratchet: per-lint violation/waiver counts may only decrease.
//!
//! `lint-baseline.json` (committed at the workspace root) records, for
//! every lint, the number of unwaived violations (always zero on a green
//! tree — `check` gates that) and the number of *waived* violations.
//! `anu-xtask ratchet` recomputes both from a fresh scan and:
//!
//! - **fails** if any count exceeds the baseline — adding a waiver is a
//!   reviewed decision, made by editing `lint-baseline.json` by hand in
//!   the same commit, never a drive-by;
//! - **passes with a hint** if any count dropped — run with `--update`
//!   to rewrite the baseline and bank the improvement;
//! - **passes silently** when counts match.
//!
//! `--update` only ever tightens: it refuses to write a baseline with
//! regressions. The file format is a stable, hand-editable JSON document
//! parsed by the dependency-free reader in this module.

use std::collections::BTreeMap;

use crate::{json_str, Report, ALL_LINTS};

/// Per-lint counts tracked by the ratchet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintCounts {
    /// Unwaived violations (zero on a tree that passes `check`).
    pub violations: usize,
    /// Violations suppressed by a justified waiver.
    pub waived: usize,
}

/// The committed ratchet baseline: counts per lint name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Counts keyed by lint name, including zero entries for every lint.
    pub lints: BTreeMap<String, LintCounts>,
}

impl Baseline {
    /// Compute the baseline for a report: every known lint gets an entry,
    /// zero or not, so the committed file always lists the full set.
    pub fn from_report(report: &Report) -> Baseline {
        let viol = report.violations_by_lint();
        let mut lints = BTreeMap::new();
        for lint in ALL_LINTS {
            let name = lint.name();
            lints.insert(
                name.to_string(),
                LintCounts {
                    violations: viol.get(name).copied().unwrap_or(0),
                    waived: report.waived_by_lint.get(name).copied().unwrap_or(0),
                },
            );
        }
        Baseline { lints }
    }

    /// Render as the committed JSON document (stable formatting, one
    /// lint per line, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": 1,\n  \"lints\": {\n");
        for (i, (name, c)) in self.lints.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {{\"violations\": {}, \"waived\": {}}}{}\n",
                json_str(name),
                c.violations,
                c.waived,
                if i + 1 < self.lints.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a baseline document written by [`Baseline::render`] (or
    /// edited by hand). Accepts any whitespace; rejects unknown schema
    /// versions and malformed JSON with a descriptive message.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            i: 0,
        };
        let mut schema: Option<u64> = None;
        let mut lints = BTreeMap::new();

        p.consume('{')?;
        loop {
            p.skip_ws();
            if p.peek() == Some('}') {
                p.i += 1;
                break;
            }
            let key = p.string()?;
            p.consume(':')?;
            match key.as_str() {
                "schema" => schema = Some(p.number()?),
                "lints" => {
                    p.consume('{')?;
                    loop {
                        p.skip_ws();
                        if p.peek() == Some('}') {
                            p.i += 1;
                            break;
                        }
                        let lint = p.string()?;
                        p.consume(':')?;
                        let counts = p.counts()?;
                        lints.insert(lint, counts);
                        p.skip_ws();
                        if p.peek() == Some(',') {
                            p.i += 1;
                        }
                    }
                }
                other => return Err(format!("unknown baseline key `{other}`")),
            }
            p.skip_ws();
            if p.peek() == Some(',') {
                p.i += 1;
            }
        }
        if p.peek().is_some() {
            return Err(format!("trailing data after baseline at byte {}", p.i));
        }
        match schema {
            Some(1) => Ok(Baseline { lints }),
            Some(v) => Err(format!("unsupported baseline schema {v}")),
            None => Err("baseline is missing the `schema` key".to_string()),
        }
    }
}

/// Minimal parser over the restricted baseline JSON shape.
struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.bytes.get(self.i).map(|&b| b as char)
    }

    fn consume(&mut self, c: char) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.i += 1;
                Ok(())
            }
            got => Err(format!("expected `{c}`, found {got:?} at byte {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume('"')?;
        let start = self.i;
        while let Some(&b) = self.bytes.get(self.i) {
            if b == b'"' {
                let s = String::from_utf8_lossy(&self.bytes[start..self.i]).into_owned();
                self.i += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escapes are not supported in baseline keys".to_string());
            }
            self.i += 1;
        }
        Err("unterminated string in baseline".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.bytes.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a number at byte {start}"));
        }
        String::from_utf8_lossy(&self.bytes[start..self.i])
            .parse::<u64>()
            .map_err(|e| format!("bad number in baseline: {e}"))
    }

    fn counts(&mut self) -> Result<LintCounts, String> {
        let mut counts = LintCounts::default();
        self.consume('{')?;
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.i += 1;
                break;
            }
            let key = self.string()?;
            self.consume(':')?;
            let n = self.number()? as usize;
            match key.as_str() {
                "violations" => counts.violations = n,
                "waived" => counts.waived = n,
                other => return Err(format!("unknown count key `{other}`")),
            }
            self.skip_ws();
            if self.peek() == Some(',') {
                self.i += 1;
            }
        }
        Ok(counts)
    }
}

/// The outcome of comparing a fresh scan against the baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Human-readable lines describing count increases (CI failures).
    pub regressions: Vec<String>,
    /// Human-readable lines describing count decreases (banked via
    /// `--update`).
    pub improvements: Vec<String>,
}

impl Comparison {
    /// Did the scan hold the ratchet (no increases)?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `current` counts against `baseline`. A lint absent from the
/// baseline is treated as zero (new lints start tight).
pub fn compare(baseline: &Baseline, current: &Baseline) -> Comparison {
    let mut cmp = Comparison::default();
    let zero = LintCounts::default();
    let mut names: Vec<&String> = baseline.lints.keys().collect();
    for k in current.lints.keys() {
        if !baseline.lints.contains_key(k) {
            names.push(k);
        }
    }
    for name in names {
        let base = baseline.lints.get(name).unwrap_or(&zero);
        let cur = current.lints.get(name).unwrap_or(&zero);
        for (what, b, c) in [
            ("unwaived", base.violations, cur.violations),
            ("waived", base.waived, cur.waived),
        ] {
            if c > b {
                cmp.regressions
                    .push(format!("{name}: {what} count rose {b} -> {c}"));
            } else if c < b {
                cmp.improvements
                    .push(format!("{name}: {what} count fell {b} -> {c}"));
            }
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(entries: &[(&str, usize, usize)]) -> Baseline {
        let mut lints = BTreeMap::new();
        for &(name, violations, waived) in entries {
            lints.insert(name.to_string(), LintCounts { violations, waived });
        }
        Baseline { lints }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = baseline(&[("panic", 0, 12), ("as-cast", 1, 3)]);
        let parsed = Baseline::parse(&b.render()).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn parse_rejects_bad_schema_and_shape() {
        assert!(Baseline::parse("{\"schema\": 2, \"lints\": {}}").is_err());
        assert!(Baseline::parse("{\"lints\": {}}").is_err());
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"schema\": 1, \"bogus\": {}}").is_err());
    }

    #[test]
    fn increase_is_a_regression() {
        let base = baseline(&[("panic", 0, 10)]);
        let cur = baseline(&[("panic", 0, 11)]);
        let cmp = compare(&base, &cur);
        assert!(!cmp.ok());
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("rose 10 -> 11"));
    }

    #[test]
    fn decrease_is_an_improvement() {
        let base = baseline(&[("panic", 0, 10), ("print", 0, 2)]);
        let cur = baseline(&[("panic", 0, 7), ("print", 0, 2)]);
        let cmp = compare(&base, &cur);
        assert!(cmp.ok());
        assert_eq!(cmp.improvements.len(), 1);
        assert!(cmp.improvements[0].contains("fell 10 -> 7"));
    }

    #[test]
    fn lint_missing_from_baseline_starts_tight() {
        let base = baseline(&[]);
        let cur = baseline(&[("tick-arith", 0, 1)]);
        let cmp = compare(&base, &cur);
        assert!(!cmp.ok(), "new lints must not smuggle in waivers");
        // And a zero-count new lint is fine.
        let cur = baseline(&[("tick-arith", 0, 0)]);
        assert!(compare(&base, &cur).ok());
    }

    #[test]
    fn unwaived_violations_also_ratchet() {
        let base = baseline(&[("missing-docs", 0, 0)]);
        let cur = baseline(&[("missing-docs", 2, 0)]);
        assert!(!compare(&base, &cur).ok());
    }

    #[test]
    fn from_report_lists_every_lint() {
        let b = Baseline::from_report(&Report::default());
        assert_eq!(b.lints.len(), ALL_LINTS.len());
        assert!(b.lints.values().all(|c| c.violations == 0 && c.waived == 0));
    }
}
