//! Differential tests: the token-based scanner against the frozen v1
//! line scanner (`anu_xtask::legacy`).
//!
//! On the v1 fixture trees the two scanners must agree finding-for-finding
//! — the lexer rewrite changes the machinery, not the verdicts. On the
//! `fixtures/trees/fp_fixes` tree they must *disagree* in exactly the
//! ways the rewrite intended: v1's byte-raw-string leak produced
//! doc-slash and missing-docs false positives that the lexer kills.

use anu_xtask::{legacy, scan_workspace, Lint, Report};
use std::path::PathBuf;

fn v1_fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn tree(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/trees")
        .join(name)
}

fn findings(r: &Report) -> Vec<(String, usize, Lint, String)> {
    r.violations
        .iter()
        .map(|v| (v.file.clone(), v.line, v.lint, v.message.clone()))
        .collect()
}

#[test]
fn scanners_agree_on_v1_fixture_trees() {
    for name in ["violations", "waived", "clean"] {
        let root = v1_fixture(name);
        let new = scan_workspace(&root).expect("new scan");
        let old = legacy::scan_workspace_legacy(&root).expect("legacy scan");
        assert_eq!(
            findings(&new),
            findings(&old),
            "finding mismatch on fixture `{name}`"
        );
        assert_eq!(new.waived, old.waived, "waived count on `{name}`");
        assert_eq!(
            new.files_scanned, old.files_scanned,
            "files scanned on `{name}`"
        );
        for (krate, cov) in &old.doc_coverage {
            let n = &new.doc_coverage[krate];
            assert_eq!(
                (n.documented, n.total),
                (cov.documented, cov.total),
                "doc coverage for {krate} on `{name}`"
            );
        }
    }
}

#[test]
fn fp_fixes_tree_shows_the_intended_disagreements() {
    let root = tree("fp_fixes");
    let old = legacy::scan_workspace_legacy(&root).expect("legacy scan");
    let new = scan_workspace(&root).expect("new scan");

    // v1: prose and a `pub fn` inside `br#"…"#` leak into the code view,
    // and a leaked `}` closes the cfg(test) region early.
    let mut old_findings: Vec<(String, usize, Lint)> = old
        .violations
        .iter()
        .map(|v| (v.file.clone(), v.line, v.lint))
        .collect();
    old_findings.sort();
    assert_eq!(
        old_findings,
        [
            ("crates/core/src/lib.rs".to_string(), 12, Lint::DocSlash),
            ("crates/core/src/lib.rs".to_string(), 13, Lint::MissingDocs),
            ("crates/des/src/frame.rs".to_string(), 20, Lint::MissingDocs),
        ],
        "the v1 scanner must reproduce its historical false positives"
    );
    let old_core = &old.doc_coverage["anu-core"];
    assert_eq!((old_core.documented, old_core.total), (1, 2));

    // The lexer sees the raw strings as single tokens: nothing leaks.
    assert!(
        new.clean(),
        "token scanner false positives: {:?}",
        new.violations
    );
    let core = &new.doc_coverage["anu-core"];
    assert_eq!((core.documented, core.total), (1, 1));
    let des = &new.doc_coverage["anu-des"];
    assert_eq!((des.documented, des.total), (1, 1));
}

#[test]
fn import_alias_tree_findings() {
    let root = tree("import_alias");
    let new = scan_workspace(&root).expect("new scan");
    let got: Vec<(usize, Lint)> = new.violations.iter().map(|v| (v.line, v.lint)).collect();
    assert_eq!(
        got,
        [(7, Lint::ImportGraph), (9, Lint::ImportGraph)],
        "findings: {:?}",
        new.violations
    );
    assert!(new.violations[1].message.contains("Clock"), "alias named");
    // The v1 scanner had no import analysis at all.
    let old = legacy::scan_workspace_legacy(&root).expect("legacy scan");
    assert!(old.clean());
}

#[test]
fn rng_shared_tree_findings() {
    let root = tree("rng_shared");
    let new = scan_workspace(&root).expect("new scan");
    let got: Vec<Lint> = new.violations.iter().map(|v| v.lint).collect();
    assert_eq!(
        got,
        [Lint::RngDiscipline, Lint::RngDiscipline],
        "findings: {:?}",
        new.violations
    );
    // One constant-seed construction, one stream shared across a scope.
    assert!(new.violations.iter().any(|v| v.message.contains("seed")));
    assert!(new.violations.iter().any(|v| v.message.contains("scope")));
}

#[test]
fn tick_arith_tree_findings() {
    let root = tree("tick_arith");
    let new = scan_workspace(&root).expect("new scan");
    let got: Vec<(usize, Lint)> = new.violations.iter().map(|v| (v.line, v.lint)).collect();
    assert_eq!(
        got,
        [(5, Lint::TickArith), (10, Lint::TickArith)],
        "findings: {:?}",
        new.violations
    );
}
