//! Integration tests for `anu-xtask` against the fixture trees under
//! `tests/fixtures/`: exact per-lint counts, waiver honoring, and the JSON
//! report shape.

use anu_xtask::{scan_workspace, Lint, Report};
use std::path::PathBuf;

fn scan_fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    scan_workspace(&root).expect("fixture tree readable")
}

fn count(report: &Report, lint: Lint) -> usize {
    report.violations.iter().filter(|v| v.lint == lint).count()
}

#[test]
fn violations_fixture_exact_counts() {
    let r = scan_fixture("violations");
    assert_eq!(r.files_scanned, 3);
    assert_eq!(count(&r, Lint::WallClock), 1);
    assert_eq!(count(&r, Lint::ThreadRng), 1);
    assert_eq!(count(&r, Lint::HashIteration), 1);
    // One bare unwrap, plus one whose waiver lacks a justification.
    assert_eq!(count(&r, Lint::Panic), 2);
    // `undocumented`, plus `mangled_doc` (its doc line degraded to code).
    assert_eq!(count(&r, Lint::MissingDocs), 2);
    assert_eq!(count(&r, Lint::AsCast), 1);
    assert_eq!(count(&r, Lint::FloatCmp), 1);
    // The `/ so the doc-slash lint…` line beside a `///`; the division
    // continuation in `ratio` must NOT count.
    assert_eq!(count(&r, Lint::DocSlash), 1);
    // The justification-less waiver and the unknown-lint waiver.
    assert_eq!(count(&r, Lint::Waiver), 2);
    assert_eq!(r.violations.len(), 12);
    assert_eq!(r.waived, 0);
    assert!(!r.clean());
}

#[test]
fn violations_fixture_locations() {
    let r = scan_fixture("violations");
    let at = |lint: Lint| {
        r.violations
            .iter()
            .filter(|v| v.lint == lint)
            .map(|v| (v.file.as_str(), v.line))
            .collect::<Vec<_>>()
    };
    assert_eq!(at(Lint::WallClock), [("crates/core/src/lib.rs", 6)]);
    assert_eq!(at(Lint::AsCast), [("crates/core/src/interval.rs", 5)]);
    assert_eq!(at(Lint::FloatCmp), [("crates/core/src/interval.rs", 6)]);
    assert_eq!(
        at(Lint::Panic),
        [
            ("crates/core/src/lib.rs", 21),
            ("crates/core/src/lib.rs", 29)
        ]
    );
    assert_eq!(at(Lint::DocSlash), [("crates/core/src/lib.rs", 38)]);
}

#[test]
fn binary_entry_points_are_exempt_from_panic_policy() {
    let r = scan_fixture("violations");
    assert!(
        !r.violations.iter().any(|v| v.file == "src/main.rs"),
        "src/main.rs must be exempt, got: {:?}",
        r.violations
    );
}

#[test]
fn waived_fixture_suppresses_everything() {
    let r = scan_fixture("waived");
    assert!(r.clean(), "unexpected violations: {:?}", r.violations);
    // wall-clock + same-line hash-iteration + (thread-rng, panic) pair.
    assert_eq!(r.waived, 4);
    assert_eq!(r.files_scanned, 1);
    let cov = &r.doc_coverage["anu-core"];
    assert_eq!((cov.documented, cov.total), (3, 3));
}

#[test]
fn clean_fixture_is_clean() {
    let r = scan_fixture("clean");
    assert!(r.clean());
    assert_eq!(r.waived, 0);
    assert_eq!(r.files_scanned, 1);
    let cov = &r.doc_coverage["anu"];
    assert_eq!((cov.documented, cov.total), (1, 1));
}

#[test]
fn json_report_shape() {
    let r = scan_fixture("violations");
    let json = r.render_json();
    // Top-level keys, in a stable order.
    for key in [
        "\"ok\": false",
        "\"files_scanned\": 3",
        "\"waived\": 0",
        "\"violations\": [",
        "\"doc_coverage\": {",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // Every violation entry carries the four fields.
    assert_eq!(json.matches("\"lint\": ").count(), 12);
    assert_eq!(json.matches("\"file\": ").count(), 12);
    assert_eq!(json.matches("\"line\": ").count(), 12);
    assert_eq!(json.matches("\"message\": ").count(), 12);
    assert!(json.contains("\"lint\": \"wall-clock\""));
    assert!(json.contains("\"lint\": \"doc-slash\""));
    assert!(json.contains("\"anu-core\": {\"documented\": 8, \"total\": 10"));
    // Balanced braces/brackets (the report is hand-rendered, not serde).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // A clean report says so.
    let clean = scan_fixture("clean").render_json();
    assert!(clean.contains("\"ok\": true"));
    assert!(clean.contains("\"violations\": [],"));
}
