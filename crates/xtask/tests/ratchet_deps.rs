//! Integration tests for the ratchet baseline and the `deps` audit:
//! fixture baselines drive the compare logic end to end, and the CLI is
//! exercised through the built binary so the exit-code contract is pinned.

use anu_xtask::ratchet::{compare, Baseline};
use anu_xtask::{deps, scan_workspace};
use std::path::PathBuf;
use std::process::Command;

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

fn read_baseline(rel: &str) -> Baseline {
    let text = std::fs::read_to_string(fixture(rel)).expect("fixture baseline");
    Baseline::parse(&text).expect("fixture baseline parses")
}

fn xtask(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_anu-xtask"))
        .args(args)
        .output()
        .expect("run anu-xtask")
}

#[test]
fn tick_arith_tree_regresses_against_tight_baseline() {
    let report = scan_workspace(&fixture("trees/tick_arith")).expect("scan");
    let current = Baseline::from_report(&report);
    assert_eq!(current.lints["tick-arith"].violations, 2);

    let cmp = compare(&read_baseline("ratchet/increase.json"), &current);
    assert!(!cmp.ok());
    assert_eq!(cmp.regressions.len(), 1);
    assert!(cmp.regressions[0].contains("tick-arith"));

    let cmp = compare(&read_baseline("ratchet/decrease.json"), &current);
    assert!(cmp.ok());
    // violations 5 -> 2 and waived 1 -> 0 both improved.
    assert_eq!(cmp.improvements.len(), 2);
}

#[test]
fn ratchet_cli_exit_codes() {
    let root = fixture("trees/tick_arith");
    let root = root.to_str().expect("utf-8 path");

    let inc = fixture("ratchet/increase.json");
    let out = xtask(&[
        "ratchet",
        "--root",
        root,
        "--baseline",
        inc.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ratchet regression"), "stdout: {stdout}");

    let dec = fixture("ratchet/decrease.json");
    let out = xtask(&[
        "ratchet",
        "--root",
        root,
        "--baseline",
        dec.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(0), "improvement must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ratchet improvement"), "stdout: {stdout}");
    assert!(
        stdout.contains("--update"),
        "improvement without --update must hint at banking it: {stdout}"
    );
    // Without --update the fixture baseline is untouched.
    let text = std::fs::read_to_string(&dec).expect("baseline still there");
    assert!(text.contains("\"violations\": 5"));

    let out = xtask(&[
        "ratchet",
        "--root",
        root,
        "--baseline",
        "/nonexistent/base.json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing baseline is a usage error"
    );
}

#[test]
fn workspace_ratchet_matches_committed_baseline() {
    // The real tree must hold its own ratchet: scanning the workspace and
    // comparing against the committed lint-baseline.json yields no
    // regressions (improvements are allowed until someone banks them).
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let committed = std::fs::read_to_string(workspace.join("lint-baseline.json"))
        .expect("committed lint-baseline.json");
    let committed = Baseline::parse(&committed).expect("committed baseline parses");
    let report = scan_workspace(&workspace).expect("workspace scan");
    let cmp = compare(&committed, &Baseline::from_report(&report));
    assert!(
        cmp.ok(),
        "lint counts regressed against lint-baseline.json: {:?}",
        cmp.regressions
    );
}

#[test]
fn deps_audit_fixtures() {
    let clean = deps::audit(&fixture("deps/clean")).expect("clean lockfile");
    assert!(clean.is_empty(), "unexpected externals: {clean:?}");

    let ext = deps::audit(&fixture("deps/external")).expect("external lockfile");
    assert_eq!(ext.len(), 1);
    assert_eq!(ext[0].name, "rand");
}

#[test]
fn deps_cli_exit_codes() {
    let out = xtask(&[
        "deps",
        "--root",
        fixture("deps/clean").to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(0));

    let out = xtask(&[
        "deps",
        "--root",
        fixture("deps/external").to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rand"), "stdout: {stdout}");
}
