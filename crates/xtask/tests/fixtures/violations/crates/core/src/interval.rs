//! Fixture module: fixed-point soundness violations.

/// One bare cast and one float comparison.
pub fn unsound(x: u64, a: f64) -> bool {
    let _y = x as f64;
    a == 0.5
}
