//! Fixture crate: triggers each determinism and panic-policy lint once
//! (panic twice: one bare, one under a malformed waiver).

/// Reads the wall clock.
pub fn clock() {
    let _t = std::time::Instant::now();
}

/// Draws ambient entropy.
pub fn entropy() {
    let _r = thread_rng();
}

/// Iterates a hash map.
pub fn hashed() {
    let _m: HashMap<u32, u32> = HashMap::new();
}

/// Panics in library code.
pub fn panicky(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn undocumented() {}

/// A waiver without a justification does not waive anything.
pub fn badly_waived(x: Option<u32>) -> u32 {
    // anu-lint: allow(panic)
    x.unwrap()
}

/// A waiver naming an unknown lint is itself a violation.
pub fn unknown_waiver() {
    // anu-lint: allow(nonsense) -- not a lint name
}

/// Documented, except the continuation below lost two slashes,
/ so the doc-slash lint flags it as a mangled doc line.
pub fn mangled_doc() {}

/// Long division split across lines is not a doc line.
pub fn ratio(a: f64, d: f64, e: f64) -> f64 {
    a / d
        / e
}
