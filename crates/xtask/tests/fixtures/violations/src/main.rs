//! Fixture binary: the panic policy does not apply to entry points.

fn main() {
    std::env::args().next().unwrap();
}
