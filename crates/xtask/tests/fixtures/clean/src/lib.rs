//! Fixture crate with nothing to report.

/// Adds one.
pub fn add_one(x: u64) -> u64 {
    x.saturating_add(1)
}
