//! Fixture crate: every violation carries a justified waiver, including a
//! same-line waiver and a comma-separated multi-lint waiver.

/// Clock read, waived from the line above.
pub fn waived_clock() {
    // anu-lint: allow(wall-clock) -- fixture exercising the waiver path
    let _t = std::time::Instant::now();
}

/// Hash map, waived on the same line.
pub fn waived_map() {
    let _m: HashMap<u32, u32> = HashMap::new(); // anu-lint: allow(hash-iteration) -- same-line waiver
}

/// Entropy and panic together, waived by one multi-lint comment.
pub fn waived_pair(x: Option<u32>) -> u32 {
    // anu-lint: allow(thread-rng, panic) -- fixture: both lints fire on the next line
    thread_rng(x).unwrap()
}
