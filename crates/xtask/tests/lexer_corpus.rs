//! Golden-file tests pinning the lexer's token stream on the corpus under
//! `fixtures/lexer/`.
//!
//! Each `<name>.rs` has a committed `<name>.tokens` rendering (one token
//! per line: line number, kind, escaped text). Any lexer change that
//! shifts a span, merges a token, or reclassifies a kind shows up as a
//! readable diff. Regenerate after an intentional change with:
//!
//! ```text
//! XTASK_REGEN=1 cargo test -p anu-xtask --test lexer_corpus
//! ```

use anu_xtask::lexer;
use std::fs;
use std::path::PathBuf;

const CORPUS: [&str; 3] = ["raw_strings", "comments", "chars_lifetimes"];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/lexer")
}

#[test]
fn token_streams_match_goldens() {
    let dir = corpus_dir();
    let regen = std::env::var_os("XTASK_REGEN").is_some();
    for name in CORPUS {
        let src = fs::read_to_string(dir.join(format!("{name}.rs"))).expect("corpus source");
        let rendered = lexer::render_tokens(&src);
        let golden_path = dir.join(format!("{name}.tokens"));
        if regen {
            fs::write(&golden_path, &rendered).expect("write golden");
            continue;
        }
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
        assert_eq!(
            rendered, golden,
            "token stream for {name}.rs diverged from its golden; \
             regenerate with XTASK_REGEN=1 if the change is intentional"
        );
    }
}

#[test]
fn corpus_sources_lex_without_token_gaps() {
    // Every non-whitespace byte of every corpus file must be covered by
    // exactly one token — the lexer never silently drops input.
    let dir = corpus_dir();
    for name in CORPUS {
        let src = fs::read_to_string(dir.join(format!("{name}.rs"))).expect("corpus source");
        let tokens = lexer::lex(&src);
        let mut covered = vec![false; src.len()];
        for t in &tokens {
            for c in covered.get_mut(t.start..t.end).expect("span in bounds") {
                assert!(!*c, "{name}: overlapping token at {}..{}", t.start, t.end);
                *c = true;
            }
        }
        for (i, b) in src.bytes().enumerate() {
            if !b.is_ascii_whitespace() {
                assert!(covered[i], "{name}: byte {i} ({:?}) uncovered", b as char);
            }
        }
    }
}
