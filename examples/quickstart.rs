//! Quickstart: the ANU placement map and delegate tuner, step by step.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This walks the core mechanism without any simulation: build a map,
//! locate file sets by hashing their unique names, feed the delegate a
//! round of latency reports, and watch mapped regions — and therefore
//! file-set ownership — shift toward the fast servers with minimal
//! movement.

use anu::core::{LoadReport, PlacementMap, ServerId, Tuner, TuningConfig};

fn main() {
    // A four-server cluster. ANU knows nothing about their speeds.
    let servers: Vec<ServerId> = (0..4).map(ServerId).collect();
    let mut map = PlacementMap::with_default_rounds(&servers, 0xF11E_5E75).unwrap();

    // File sets are subtrees of the namespace with administrator-assigned
    // unique names. Locating one is a pure hash computation.
    let file_sets: Vec<String> = (0..64).map(|i| format!("projects/fs{i:02}")).collect();

    println!("initial shares (equal, no a-priori knowledge):");
    for (s, f) in map.share_fractions() {
        println!("  {s}: {f:.3}");
    }
    let count_owned =
        |map: &PlacementMap, s: ServerId| file_sets.iter().filter(|n| map.locate(n) == s).count();
    println!("initial ownership:");
    for &s in &servers {
        println!(
            "  {s}: {} of {} file sets",
            count_owned(&map, s),
            file_sets.len()
        );
    }

    // Pretend server 0 is slow hardware: it reports much higher request
    // latency than the others. The delegate scales the regions.
    let mut tuner = Tuner::new(TuningConfig::paper());
    let owners_before: Vec<ServerId> = file_sets.iter().map(|n| map.locate(n)).collect();
    for round in 1..=4 {
        let reports: Vec<LoadReport> = servers
            .iter()
            .map(|&s| LoadReport {
                server: s,
                mean_latency_ms: if s.0 == 0 { 600.0 } else { 90.0 },
                requests: 250,
                age_ticks: 0,
            })
            .collect();
        match tuner.plan(&map.share_fractions(), &reports) {
            Some(plan) => {
                let changes = map.rebalance(&plan.targets).unwrap();
                println!(
                    "round {round}: mu = {:.0} ms, movers {:?}, {} region segments changed",
                    plan.mu,
                    plan.movers,
                    changes.len()
                );
            }
            None => println!("round {round}: balanced within threshold — no change"),
        }
    }

    println!("shares after tuning (server 0 shed load):");
    for (s, f) in map.share_fractions() {
        println!("  {s}: {f:.3}");
    }
    println!("ownership after tuning:");
    for &s in &servers {
        println!(
            "  {s}: {} of {} file sets",
            count_owned(&map, s),
            file_sets.len()
        );
    }

    // Minimal movement: only file sets whose probe path crossed a changed
    // region moved.
    let moved = file_sets
        .iter()
        .zip(&owners_before)
        .filter(|(n, &before)| map.locate(n) != before)
        .count();
    println!(
        "file sets that changed owner across all rounds: {moved} of {}",
        file_sets.len()
    );
    assert!(
        moved < file_sets.len() / 2,
        "tuning must not reshuffle the world"
    );
}
