//! ANU beyond file systems: balancing virtual hosts on a web cluster.
//!
//! Run with: `cargo run --release --example web_cluster`
//!
//! The paper closes: "Although it is designed for a shared-disk file
//! system, it suits any architecture in which data are partitioned among
//! servers at runtime, but can be moved from server to server. This
//! includes Web servers, clustered databases, and NFS servers."
//!
//! Here the indivisible workload units are *virtual hosts* (string names),
//! the servers are a rack of twelve mixed-generation web nodes, and the
//! "latency" is a simple closed-loop model (load over capacity). The
//! example tunes to convergence, then decommissions two nodes at runtime
//! and rebalances — all through the same public API the file system uses,
//! with names as plain strings.

use anu::core::{LoadReport, PlacementMap, ServerId, Tuner, TuningConfig};
use std::collections::BTreeMap;

/// Closed-loop latency model: response time grows with load per capacity.
fn model_latency(load: f64, capacity: f64) -> f64 {
    20.0 + 200.0 * (load / capacity)
}

fn main() {
    // Twelve nodes across three hardware generations.
    let capacities: Vec<f64> = (0..12)
        .map(|i| match i % 3 {
            0 => 1.0, // old
            1 => 2.5, // mid
            _ => 4.0, // new
        })
        .collect();
    let servers: Vec<ServerId> = (0..12).map(ServerId).collect();
    let mut map = PlacementMap::with_default_rounds(&servers, 0x0003_EBC1_u64).unwrap();

    // Two thousand virtual hosts with Zipf-ish popularity.
    let vhosts: Vec<String> = (0..2000).map(|i| format!("vhost-{i:04}.example")).collect();
    let demand: Vec<f64> = (0..2000)
        .map(|i| 1.0 / (1.0 + i as f64 / 50.0)) // heavy head, long tail
        .collect();

    let mut tuner = Tuner::new(TuningConfig::paper());

    let tick = |map: &mut PlacementMap, tuner: &mut Tuner| -> (f64, f64) {
        // Aggregate demand per node under the current placement.
        let mut load: BTreeMap<ServerId, f64> =
            map.servers().into_iter().map(|s| (s, 0.0)).collect();
        for (v, d) in vhosts.iter().zip(&demand) {
            *load.get_mut(&map.locate(v)).unwrap() += d;
        }
        let reports: Vec<LoadReport> = load
            .iter()
            .map(|(&s, &l)| LoadReport {
                server: s,
                mean_latency_ms: model_latency(l, capacities[s.0 as usize]),
                requests: (l * 100.0) as u64,
                age_ticks: 0,
            })
            .collect();
        let worst = reports
            .iter()
            .map(|r| r.mean_latency_ms)
            .fold(0.0f64, f64::max);
        let best = reports
            .iter()
            .map(|r| r.mean_latency_ms)
            .fold(f64::MAX, f64::min);
        if let Some(plan) = tuner.plan(&map.share_fractions(), &reports) {
            map.rebalance(&plan.targets).unwrap();
        }
        (worst, best)
    };

    println!("tuning 2000 virtual hosts across 12 mixed-generation nodes:");
    for round in 1..=10 {
        let (worst, best) = tick(&mut map, &mut tuner);
        println!("  round {round:>2}: node latency spread {best:.0}..{worst:.0} ms");
    }

    // Decommission the two oldest nodes at runtime: ANU treats this like
    // failure — only their vhosts re-hash.
    println!("\ndecommissioning nodes s0 and s3 (old generation):");
    let before: Vec<ServerId> = vhosts.iter().map(|v| map.locate(v)).collect();
    map.remove_server(ServerId(0)).unwrap();
    map.remove_server(ServerId(3)).unwrap();
    map.restore_half_occupancy().unwrap();
    let moved = vhosts
        .iter()
        .zip(&before)
        .filter(|(v, &b)| map.locate(*v) != b)
        .count();
    let orphaned = before
        .iter()
        .filter(|&&s| s == ServerId(0) || s == ServerId(3))
        .count();
    println!("  vhosts moved: {moved} (orphaned: {orphaned} — the unavoidable minimum)");

    for round in 11..=16 {
        let (worst, best) = tick(&mut map, &mut tuner);
        println!("  round {round:>2}: node latency spread {best:.0}..{worst:.0} ms");
    }
    println!("\nthe same map, tuner and invariants drive web placement as file sets — no code specialization needed");
}
