//! Heterogeneous cluster: ANU vs a static policy, end to end.
//!
//! Run with: `cargo run --release --example heterogeneous_cluster`
//!
//! Simulates the paper's five-server cluster (processing powers 1, 3, 5,
//! 7, 9) under a skewed synthetic metadata workload, once with static
//! round-robin placement and once with ANU randomization, and prints the
//! per-server outcome. Round-robin oversubscribes the weak servers; ANU —
//! with no knowledge of speeds — discovers the heterogeneity from latency
//! and converges.

use anu::cluster::{late_imbalance, late_mean, run, ClusterConfig};
use anu::core::TuningConfig;
use anu::policies::{AnuPolicy, RoundRobin};
use anu::workload::{CostModel, SyntheticConfig, WeightDist};

fn main() {
    let cluster = ClusterConfig::paper();
    let workload = SyntheticConfig {
        n_file_sets: 200,
        total_requests: 40_000,
        duration_secs: 4_000.0,
        weights: WeightDist::PowerOfUniform { alpha: 200.0 },
        mean_cost_secs: 0.0, // set below via offered load
        cost: CostModel::UniformSpread { spread: 0.2 },
        seed: 2024,
    }
    .with_offered_load(0.5, cluster.total_speed())
    .generate();

    println!(
        "workload: {} requests, {} file sets, heterogeneity ratio {:.0}x, offered load {:.2}",
        workload.requests.len(),
        workload.n_file_sets,
        workload.stats().heterogeneity_ratio,
        workload.offered_load(cluster.total_speed()),
    );

    let mut rr = RoundRobin::new();
    let static_run = run(&cluster, &workload, &mut rr);

    let mut anu = AnuPolicy::new(anu::core::AnuConfig {
        seed: 2024,
        rounds: anu::core::DEFAULT_ROUNDS,
        tuning: TuningConfig::paper(),
    });
    let anu_run = run(&cluster, &workload, &mut anu);

    for r in [&static_run, &anu_run] {
        println!("\n--- {} ---", r.policy);
        println!(
            "  mean latency {:.1} ms   steady-state {:.1} ms   migrations {}",
            r.summary.mean_latency_ms,
            late_mean(&r.series),
            r.summary.migrations
        );
        for (s, mean) in &r.summary.per_server_mean_ms {
            println!(
                "  {s}: mean {mean:>10.1} ms   served {:>6}   utilization {:.2}",
                r.summary.per_server_requests[s], r.summary.per_server_utilization[s]
            );
        }
        println!("  late imbalance CoV {:.2}", late_imbalance(&r.series));
    }

    let improvement = late_mean(&static_run.series) / late_mean(&anu_run.series).max(1.0);
    println!(
        "\nANU steady-state latency is {improvement:.0}x better than round-robin on this cluster"
    );
    assert!(
        late_mean(&anu_run.series) < late_mean(&static_run.series),
        "ANU must beat the static policy on a heterogeneous cluster"
    );
}
