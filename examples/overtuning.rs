//! The over-tuning problem, reproduced in miniature.
//!
//! Run with: `cargo run --release --example overtuning`
//!
//! ANU's early versions "continued to tune load, moving file sets from
//! server to server, without improving load balance" (paper §6). This
//! example runs the same skewed workload twice — once with the raw
//! tuning rule, once with thresholding + top-off + divergent tuning — and
//! prints the weakest server's latency trajectory side by side, plus the
//! migration counts that make the over-tuning visible.

use anu::cluster::{flip_count, late_mean, run, ClusterConfig};
use anu::core::{ServerId, TuningConfig};
use anu::policies::AnuPolicy;
use anu::workload::{CostModel, SyntheticConfig, WeightDist};

fn run_with(tuning: TuningConfig, label: &str) -> anu::cluster::RunResult {
    let cluster = ClusterConfig::paper();
    let workload = SyntheticConfig {
        n_file_sets: 300,
        total_requests: 60_000,
        duration_secs: 6_000.0,
        weights: WeightDist::PowerOfUniform { alpha: 500.0 },
        mean_cost_secs: 0.0,
        cost: CostModel::UniformSpread { spread: 0.2 },
        seed: 11,
    }
    .with_offered_load(0.5, cluster.total_speed())
    .generate();
    let mut policy = AnuPolicy::new(anu::core::AnuConfig {
        seed: 11,
        rounds: anu::core::DEFAULT_ROUNDS,
        tuning,
    });
    let mut r = run(&cluster, &workload, &mut policy);
    r.policy = label.to_string();
    r
}

fn main() {
    let plain = run_with(TuningConfig::plain(), "no heuristics");
    let cured = run_with(TuningConfig::paper(), "all three heuristics");

    println!("weakest server (speed 1) mean latency per 5 min (ms):");
    println!(
        "{:>6} {:>16} {:>22}",
        "min", "no heuristics", "with heuristics"
    );
    let s0 = ServerId(0);
    let n = plain.series[&s0].buckets().len();
    for w in (0..n).step_by(5) {
        let avg = |r: &anu::cluster::RunResult| {
            let b = &r.series[&s0].buckets()[w..(w + 5).min(n)];
            let (s, c) = b
                .iter()
                .fold((0.0, 0u64), |(s, c), b| (s + b.sum, c + b.count));
            if c == 0 {
                0.0
            } else {
                s / c as f64
            }
        };
        println!("{:>6} {:>16.1} {:>22.1}", w, avg(&plain), avg(&cured));
    }

    let flips = |r: &anu::cluster::RunResult| flip_count(&r.series[&s0], 10.0, 500.0);
    println!("\nover-tuning signature:");
    println!(
        "  {:<22} migrations {:>5}   server0 busy/idle flips {:>3}   steady-state latency {:>8.1} ms",
        plain.policy,
        plain.summary.migrations,
        flips(&plain),
        late_mean(&plain.series)
    );
    println!(
        "  {:<22} migrations {:>5}   server0 busy/idle flips {:>3}   steady-state latency {:>8.1} ms",
        cured.policy,
        cured.summary.migrations,
        flips(&cured),
        late_mean(&cured.series)
    );

    assert!(
        cured.summary.migrations < plain.summary.migrations,
        "heuristics must reduce tuning churn"
    );
}
