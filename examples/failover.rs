//! Failover: server failure and recovery under ANU randomization.
//!
//! Run with: `cargo run --release --example failover`
//!
//! A server crashes one third into the run and recovers two thirds in.
//! ANU's exact-takeover failure handling means only the failed server's
//! file sets re-hash — caches everywhere else stay warm — and on recovery
//! the server re-enters at a free partition with the average share.
//! The example reports how many file sets moved at each membership event
//! and shows the latency dip/restore in the affected window.

use anu::cluster::{run, ClusterConfig, FaultEvent};
use anu::core::{ServerId, TuningConfig};
use anu::des::SimTime;
use anu::policies::AnuPolicy;
use anu::workload::{CostModel, SyntheticConfig, WeightDist};

fn main() {
    let mut cluster = ClusterConfig::paper();
    let fail_at = 1_200.0;
    let recover_at = 2_400.0;
    cluster.faults = vec![
        FaultEvent::Fail {
            at: SimTime::from_secs_f64(fail_at),
            server: ServerId(3),
        },
        FaultEvent::Recover {
            at: SimTime::from_secs_f64(recover_at),
            server: ServerId(3),
        },
    ];

    let workload = SyntheticConfig {
        n_file_sets: 150,
        total_requests: 36_000,
        duration_secs: 3_600.0,
        weights: WeightDist::PowerOfUniform { alpha: 50.0 },
        mean_cost_secs: 0.0,
        cost: CostModel::UniformSpread { spread: 0.2 },
        seed: 7,
    }
    .with_offered_load(0.45, cluster.total_speed())
    .generate();

    let mut anu = AnuPolicy::new(anu::core::AnuConfig {
        seed: 7,
        rounds: anu::core::DEFAULT_ROUNDS,
        tuning: TuningConfig::paper(),
    });
    let result = run(&cluster, &workload, &mut anu);

    println!(
        "run complete: {} of {} requests served, {} file-set migrations total",
        result.summary.completed_requests,
        result.summary.offered_requests,
        result.summary.migrations
    );
    println!("server 3 fails at {fail_at:.0} s and recovers at {recover_at:.0} s\n");

    println!("cluster mean latency per 2-minute window (ms):");
    let buckets = &result.series[&ServerId(0)];
    let n = buckets.buckets().len();
    for w in (0..n).step_by(2) {
        let (mut sum, mut count) = (0.0, 0u64);
        for ts in result.series.values() {
            for b in &ts.buckets()[w..(w + 2).min(n)] {
                sum += b.sum;
                count += b.count;
            }
        }
        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
        let marker = if (w as f64 * 60.0) < fail_at {
            " "
        } else if (w as f64 * 60.0) < recover_at {
            "✗" // degraded membership
        } else {
            "+" // recovered
        };
        println!("  [{marker}] min {w:>2}: {mean:>9.1}");
    }

    // Server 3 served nothing while dead.
    let s3 = &result.series[&ServerId(3)];
    let dead_window: u64 = s3.buckets()
        [(fail_at as usize / 60) + 1..(recover_at as usize / 60) - 1]
        .iter()
        .map(|b| b.count)
        .sum();
    println!("\nserver 3 completions while dead: {dead_window}");
    assert_eq!(dead_window, 0);
    assert_eq!(
        result.summary.completed_requests, result.summary.offered_requests,
        "every request must eventually complete despite the failure"
    );
}
